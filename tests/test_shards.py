"""Tests for repro.service.shards: plans, router parity, faults, swaps."""

from __future__ import annotations

import threading
import time

import pytest

from repro import (
    ConfigurationError,
    DocumentCollection,
    FaultInjectionError,
    FaultPlan,
    FaultSpec,
    Index,
    PKWiseSearcher,
    SearchParams,
    ServiceError,
    faults,
)
from repro.errors import ServiceClosedError
from repro.eval.harness import canonical_pair_order
from repro.persistence import generation_name
from repro.service import (
    ShardPlan,
    ShardRouter,
    partition_ranges,
    remote_healthz,
    remote_search,
    serve_http,
)
from repro.service.shards import MANIFEST_NAME

from .conftest import pairs_as_set

PARAMS = SearchParams(w=10, tau=2, k_max=3)


@pytest.fixture(autouse=True)
def _clear_fault_plan():
    yield
    faults.clear_plan()


@pytest.fixture
def query(small_corpus):
    """A query cut from doc 0 — matches docs 0 and 3 (different shards)."""
    tokens = small_corpus[0].tokens[8:38]
    words = small_corpus.vocabulary.decode(tokens)
    return small_corpus.encode_query_tokens(words, name="cross-shard")


def expected_pairs(corpus, query):
    searcher = PKWiseSearcher(corpus, PARAMS)
    return canonical_pair_order(list(searcher.search(query).pairs))


# ----------------------------------------------------------------------
class TestPartitionRanges:
    def test_equal_sizes_tile_evenly(self):
        assert partition_ranges([10] * 6, 3) == [(0, 2), (2, 4), (4, 6)]

    def test_token_weight_balances_ranges(self):
        # One huge document gets its own shard; the tail splits evenly.
        assert partition_ranges([30, 1, 1, 1, 1, 1], 3) == [
            (0, 1),
            (1, 4),
            (4, 6),
        ]

    def test_single_shard_covers_corpus(self):
        assert partition_ranges([5, 5, 5], 1) == [(0, 3)]

    def test_ranges_always_tile_and_are_nonempty(self):
        sizes = [3, 90, 1, 1, 40, 2, 2, 60, 5]
        for num_shards in range(1, len(sizes) + 1):
            ranges = partition_ranges(sizes, num_shards)
            assert ranges[0][0] == 0
            assert ranges[-1][1] == len(sizes)
            for (_, hi), (lo, _) in zip(ranges, ranges[1:]):
                assert hi == lo
            assert all(hi > lo for lo, hi in ranges)

    def test_rejects_bad_shard_counts(self):
        with pytest.raises(ConfigurationError):
            partition_ranges([1, 1], 0)
        with pytest.raises(ConfigurationError):
            partition_ranges([1, 1], 3)


# ----------------------------------------------------------------------
class TestShardPlan:
    def test_build_save_load_round_trip(self, small_corpus, tmp_path):
        plan = ShardPlan.build(
            small_corpus, PARAMS, tmp_path, num_shards=3
        )
        assert (tmp_path / MANIFEST_NAME).exists()
        assert plan.num_shards == 3
        assert plan.num_documents == len(small_corpus)
        for spec in plan.shards:
            assert spec.path == generation_name(
                f"shard-{spec.shard_id:03d}", 1
            )
            assert (tmp_path / spec.path).exists()
        loaded = ShardPlan.load(tmp_path)
        assert loaded.shards == plan.shards
        assert loaded.generation == plan.generation
        loaded.validate()

    def test_ensure_reuses_compatible_manifest(self, small_corpus, tmp_path):
        first = ShardPlan.build(small_corpus, PARAMS, tmp_path, num_shards=3)
        mtimes = {
            spec.path: (tmp_path / spec.path).stat().st_mtime_ns
            for spec in first.shards
        }
        again = ShardPlan.ensure(
            small_corpus, PARAMS, tmp_path, num_shards=3
        )
        assert again.shards == first.shards
        for spec in again.shards:
            assert (tmp_path / spec.path).stat().st_mtime_ns == mtimes[
                spec.path
            ]

    def test_ensure_rebuilds_on_shard_count_change(
        self, small_corpus, tmp_path
    ):
        ShardPlan.build(small_corpus, PARAMS, tmp_path, num_shards=3)
        rebuilt = ShardPlan.ensure(
            small_corpus, PARAMS, tmp_path, num_shards=2
        )
        assert rebuilt.num_shards == 2
        assert ShardPlan.load(tmp_path).num_shards == 2

    def test_generation_name_format(self):
        assert generation_name("shard-001", 7) == "shard-001.g000007.idx"
        with pytest.raises(ValueError):
            generation_name("shard-001", 0)


# ----------------------------------------------------------------------
class TestRouterParity:
    @pytest.mark.parametrize("shards", [1, 3])
    def test_local_router_matches_single_index(
        self, small_corpus, query, shards
    ):
        single = expected_pairs(small_corpus, query)
        assert single, "fixture query must produce matches"
        with ShardRouter.local(
            small_corpus, PARAMS, shards=shards
        ) as router:
            response = router.search(query)
            assert list(response.pairs) == single
            assert not response.partial
            cached = router.search(query)
            assert cached.cached
            assert list(cached.pairs) == single

    @pytest.mark.parametrize("shards", [1, 3])
    def test_snapshot_router_matches_single_index(
        self, small_corpus, query, tmp_path, shards
    ):
        single = expected_pairs(small_corpus, query)
        ShardPlan.build(small_corpus, PARAMS, tmp_path, num_shards=shards)
        with ShardRouter.open(tmp_path, mmap=True) as router:
            assert list(router.search(query).pairs) == single

    def test_index_serve_shards_facade(self, small_corpus, query):
        index = Index.build(
            [
                " ".join(small_corpus.vocabulary.decode(doc.tokens))
                for doc in small_corpus
            ],
            params=PARAMS,
        )
        single = canonical_pair_order(list(index.search(query)))
        with index.serve(shards=3) as router:
            assert router.num_shards == 3
            assert list(router.search(query).pairs) == single

    def test_http_round_trip(self, small_corpus, query):
        single = expected_pairs(small_corpus, query)
        with ShardRouter.local(small_corpus, PARAMS, shards=3) as router:
            server = serve_http(router, port=0)
            thread = threading.Thread(
                target=server.serve_forever, daemon=True
            )
            thread.start()
            try:
                health = remote_healthz(server.url)
                assert health["status"] == "ok"
                assert health["num_shards"] == 3
                reply = remote_search(
                    server.url, token_ids=list(query.tokens)
                )
                assert [tuple(p) for p in reply["pairs"]] == [
                    tuple(p) for p in single
                ]
                assert "partial" not in reply
            finally:
                server.shutdown()
                server.server_close()
                thread.join(timeout=5)


# ----------------------------------------------------------------------
class TestPartialResults:
    def test_dead_shard_reports_partial(self, small_corpus, query):
        single = expected_pairs(small_corpus, query)
        with ShardRouter.local(small_corpus, PARAMS, shards=3) as router:
            dead = router.backends[1]
            lo, hi = dead.doc_lo, dead.doc_hi
            faults.install_plan(
                FaultPlan(
                    [
                        FaultSpec(
                            point="shards.scatter",
                            kind="raise",
                            match={"shard": 1},
                        )
                    ]
                )
            )
            response = router.search(query)
            assert response.partial
            assert len(response.failures) == 1
            failure = response.failures[0]
            assert failure.position == 1
            assert failure.query_name.endswith("@shard-001")
            assert failure.error_type == "FaultInjectionError"
            survivors = [
                tuple(p) for p in single if not lo <= p[0] < hi
            ]
            assert [tuple(p) for p in response.pairs] == survivors

    def test_all_shards_down_raises(self, small_corpus, query):
        with ShardRouter.local(small_corpus, PARAMS, shards=3) as router:
            faults.install_plan(
                FaultPlan(
                    [FaultSpec(point="shards.scatter", kind="raise")]
                )
            )
            with pytest.raises(ServiceError) as excinfo:
                router.search(query)
            assert len(excinfo.value.failures) == 3

    def test_search_many_tags_query_positions(self, small_corpus, query):
        with ShardRouter.local(small_corpus, PARAMS, shards=3) as router:
            faults.install_plan(
                FaultPlan(
                    [
                        FaultSpec(
                            point="shards.scatter",
                            kind="raise",
                            match={"shard": 2},
                        )
                    ]
                )
            )
            run = router.search_many([query, query])
            assert sorted(run.results_by_query) == [0, 1]
            assert [f.position for f in run.failures] == [0, 1]
            assert all(
                f.query_name.endswith("@shard-002") for f in run.failures
            )

    def test_http_partial_reply_shape(self, small_corpus, query):
        with ShardRouter.local(small_corpus, PARAMS, shards=3) as router:
            faults.install_plan(
                FaultPlan(
                    [
                        FaultSpec(
                            point="shards.scatter",
                            kind="raise",
                            match={"shard": 0},
                        )
                    ]
                )
            )
            server = serve_http(router, port=0)
            thread = threading.Thread(
                target=server.serve_forever, daemon=True
            )
            thread.start()
            try:
                reply = remote_search(
                    server.url, token_ids=list(query.tokens)
                )
                assert reply["partial"] is True
                assert reply["failures"][0]["position"] == 0
            finally:
                server.shutdown()
                server.server_close()
                thread.join(timeout=5)

    def test_closed_router_raises(self, small_corpus, query):
        router = ShardRouter.local(small_corpus, PARAMS, shards=2)
        router.close()
        with pytest.raises(ServiceClosedError):
            router.search(query)


# ----------------------------------------------------------------------
class TestHedging:
    def test_hedge_covers_one_slow_shard(self, small_corpus, query):
        single = expected_pairs(small_corpus, query)
        # The first scatter attempt for shard 0 sleeps well past the
        # hedge trigger; the hedge (second attempt) finds the fault
        # exhausted and answers promptly.
        faults.install_plan(
            FaultPlan(
                [
                    FaultSpec(
                        point="shards.scatter",
                        kind="delay",
                        match={"shard": 0},
                        delay_seconds=0.5,
                        max_triggers=1,
                    )
                ]
            )
        )
        with ShardRouter.local(
            small_corpus, PARAMS, shards=3, hedge_after=0.05
        ) as router:
            response = router.search(query)
            assert not response.partial
            assert [tuple(p) for p in response.pairs] == [
                tuple(p) for p in single
            ]
            metrics = router.metrics_snapshot()["metrics"]
            assert metrics["counters"]["router.hedges"] >= 1


# ----------------------------------------------------------------------
def _mutated_corpus(small_corpus, doc_id=0):
    """Same shape (doc count + token counts) with ``doc_id`` rewritten,
    so a rebuilt ShardPlan has identical ranges but different matches.
    Shares the parent vocabulary so old-vocab queries stay comparable."""
    data = DocumentCollection(
        tokenizer=small_corpus.tokenizer,
        vocabulary=small_corpus.vocabulary,
    )
    for doc in small_corpus:
        words = small_corpus.vocabulary.decode(doc.tokens)
        if doc.doc_id == doc_id:
            words = [f"swapped{i}" for i in range(len(words))]
        data.add_tokens(words)
    return data


class TestRollingSwap:
    def test_rolling_swap_changes_results_and_epochs(
        self, small_corpus, query, tmp_path
    ):
        ShardPlan.build(small_corpus, PARAMS, tmp_path, num_shards=3)
        with ShardRouter.open(tmp_path, mmap=True) as router:
            before = router.search(query)
            assert before.pairs
            epoch_before = router.index_epoch
            mutated = _mutated_corpus(small_corpus, doc_id=0)
            ShardPlan.build(
                mutated, PARAMS, tmp_path, num_shards=3, generation=2
            )
            assert router.rolling_swap(tmp_path) == 2
            after = router.search(query)
            assert router.index_epoch > epoch_before
            # Doc 0 was rewritten: its matches are gone, doc 3's stay.
            assert not after.cached
            after_docs = {p.doc_id for p in after.pairs}
            assert 0 not in after_docs
            assert 3 in after_docs
            expected = expected_pairs(mutated, query)
            assert list(after.pairs) == expected

    def test_swap_is_atomic_per_shard_under_live_queries(
        self, small_corpus, query, tmp_path
    ):
        """Each shard's slice of every response is wholly old or new."""
        ShardPlan.build(small_corpus, PARAMS, tmp_path, num_shards=3)
        mutated = _mutated_corpus(small_corpus, doc_id=0)
        old = pairs_as_set(expected_pairs(small_corpus, query))
        new = pairs_as_set(expected_pairs(mutated, query))
        assert old != new
        with ShardRouter.open(tmp_path, mmap=True) as router:
            shard_ranges = [
                (b.doc_lo, b.doc_hi) for b in router.backends
            ]

            def slices(pair_set):
                return [
                    frozenset(p for p in pair_set if lo <= p[0] < hi)
                    for lo, hi in shard_ranges
                ]

            old_slices, new_slices = slices(old), slices(new)
            errors: list[str] = []
            stop = threading.Event()

            def stream():
                while not stop.is_set():
                    got = slices(pairs_as_set(router.search(query)))
                    for shard, observed in enumerate(got):
                        if observed not in (
                            old_slices[shard],
                            new_slices[shard],
                        ):
                            errors.append(
                                f"shard {shard} served a mixed "
                                f"generation: {sorted(observed)}"
                            )
                            stop.set()

            thread = threading.Thread(target=stream, daemon=True)
            thread.start()
            try:
                time.sleep(0.05)
                ShardPlan.build(
                    mutated, PARAMS, tmp_path, num_shards=3, generation=2
                )
                router.rolling_swap(tmp_path)
                time.sleep(0.05)
            finally:
                stop.set()
                thread.join(timeout=10)
            assert not errors, errors[0]
            assert pairs_as_set(router.search(query)) == new

    def test_swap_invalidates_cache(self, small_corpus, query, tmp_path):
        ShardPlan.build(small_corpus, PARAMS, tmp_path, num_shards=2)
        with ShardRouter.open(tmp_path, mmap=True) as router:
            first = router.search(query)
            assert router.search(query).cached
            mutated = _mutated_corpus(small_corpus, doc_id=0)
            ShardPlan.build(
                mutated, PARAMS, tmp_path, num_shards=2, generation=2
            )
            router.rolling_swap(tmp_path)
            fresh = router.search(query)
            assert not fresh.cached
            assert pairs_as_set(fresh) != pairs_as_set(first)

    def test_swap_fault_point_fires(self, small_corpus, tmp_path):
        ShardPlan.build(small_corpus, PARAMS, tmp_path, num_shards=2)
        with ShardRouter.open(tmp_path, mmap=True) as router:
            faults.install_plan(
                FaultPlan(
                    [
                        FaultSpec(
                            point="shards.swap",
                            kind="raise",
                            match={"shard": 1},
                        )
                    ]
                )
            )
            searcher = PKWiseSearcher(
                small_corpus.subset(
                    range(router.backends[1].doc_lo, router.backends[1].doc_hi)
                ),
                PARAMS,
            )
            with pytest.raises(FaultInjectionError):
                router.swap_shard(1, searcher)

    def test_remove_document_routes_to_owner(self, small_corpus, query):
        with ShardRouter.local(small_corpus, PARAMS, shards=3) as router:
            before = pairs_as_set(router.search(query))
            assert any(p[0] == 3 for p in before)
            router.remove_document(3)
            after = pairs_as_set(router.search(query))
            assert not any(p[0] == 3 for p in after)
            assert after == {p for p in before if p[0] != 3}
            with pytest.raises(ConfigurationError):
                router.remove_document(10_000)
