"""Tests for repro.obs: metrics registry, span tracer, and the
SearchStats-on-registry refactor (merge semantics, snapshot round-trips,
serial vs parallel counter parity)."""

from __future__ import annotations

import json
import multiprocessing

import pytest

from repro import (
    DocumentCollection,
    MetricsRegistry,
    ObservabilityError,
    PKWiseSearcher,
    SearchParams,
    SearchStats,
    Tracer,
)
from repro.core.base import STAT_COUNTER_FIELDS, STAT_TIMER_FIELDS
from repro.eval import run_searcher
from repro.obs import configure_tracing, disable_tracing, get_tracer

HAVE_FORK = "fork" in multiprocessing.get_all_start_methods()


class TestRegistry:
    def test_counter_accumulates(self):
        registry = MetricsRegistry()
        registry.counter("ops").inc()
        registry.counter("ops").inc(41)
        assert registry.counter("ops").value == 42

    def test_timer_accumulates_and_times(self):
        registry = MetricsRegistry()
        registry.timer("phase").add(0.25)
        with registry.timer("phase").time():
            pass
        assert registry.timer("phase").seconds >= 0.25

    def test_gauge_holds_level(self):
        registry = MetricsRegistry()
        registry.gauge("skew").set(1.5)
        registry.gauge("skew").set(1.2)
        assert registry.gauge("skew").value == 1.2

    def test_type_clash_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ObservabilityError):
            registry.timer("x")
        with pytest.raises(ObservabilityError):
            registry.gauge("x")

    def test_snapshot_is_sorted_and_json_ready(self):
        registry = MetricsRegistry()
        registry.counter("zeta").inc(1)
        registry.counter("alpha").inc(2)
        registry.timer("t").add(0.5)
        registry.gauge("g").set(3.0)
        snap = json.loads(json.dumps(registry.snapshot()))
        assert list(snap["counters"]) == ["alpha", "zeta"]
        assert snap["timers"] == {"t": 0.5}
        assert snap["gauges"] == {"g": 3.0}

    def test_snapshot_round_trip(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(7)
        registry.timer("t").add(1.5)
        registry.gauge("g").set(2.0)
        rebuilt = MetricsRegistry.from_snapshot(registry.snapshot())
        assert rebuilt.snapshot() == registry.snapshot()

    def test_merge_semantics(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("c").inc(1)
        b.counter("c").inc(2)
        a.timer("t").add(0.5)
        b.timer("t").add(0.25)
        a.gauge("g").set(1.0)
        b.gauge("g").set(3.0)
        a.merge(b)
        assert a.counter("c").value == 3  # counters sum
        assert a.timer("t").seconds == 0.75  # timers sum
        assert a.gauge("g").value == 3.0  # gauges max

    def test_merge_is_order_independent(self):
        def build(values):
            registry = MetricsRegistry()
            for name, count in values:
                registry.counter(name).inc(count)
            return registry

        parts = [build([("a", 1), ("b", 2)]), build([("b", 5)]), build([("a", 3)])]
        forward = MetricsRegistry()
        for part in parts:
            forward.merge(part)
        backward = MetricsRegistry()
        for part in reversed(parts):
            backward.merge(part)
        assert forward.snapshot() == backward.snapshot()

    def test_malformed_snapshot_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ObservabilityError):
            registry.merge_snapshot({"bogus_kind": {"x": 1}})
        with pytest.raises(ObservabilityError):
            registry.merge_snapshot({"counters": [1, 2]})
        with pytest.raises(ObservabilityError):
            registry.merge_snapshot("nope")


class TestSearchStatsOnRegistry:
    def make_stats(self, scale=1):
        stats = SearchStats()
        for offset, name in enumerate(STAT_COUNTER_FIELDS):
            setattr(stats, name, (offset + 1) * scale)
        for offset, name in enumerate(STAT_TIMER_FIELDS):
            setattr(stats, name, (offset + 1) * 0.5 * scale)
        return stats

    def test_registry_round_trip_is_lossless(self):
        stats = self.make_stats()
        assert SearchStats.from_registry(stats.to_registry()) == stats
        assert SearchStats.from_snapshot(stats.snapshot()) == stats

    def test_merge_equals_registry_merge(self):
        left, right = self.make_stats(1), self.make_stats(3)
        via_stats = self.make_stats(1)
        via_stats.merge(right)
        registry = left.to_registry()
        registry.merge_snapshot(right.snapshot())
        assert SearchStats.from_registry(registry) == via_stats

    def test_to_dict_covers_every_field(self):
        row = self.make_stats().to_dict()
        for name in STAT_COUNTER_FIELDS + STAT_TIMER_FIELDS:
            assert name in row
        assert row["total_time"] == pytest.approx(
            sum(row[name] for name in STAT_TIMER_FIELDS)
        )

    def test_phase_seconds_names_the_phases(self):
        phases = self.make_stats().phase_seconds()
        assert set(phases) == {"routing", "signature", "candidate", "verify"}


@pytest.fixture
def reuse_corpus():
    data = DocumentCollection()
    base = [f"t{i % 23}" for i in range(150)]
    data.add_tokens(base)
    data.add_tokens(base[40:100] + [f"u{i}" for i in range(60)])
    data.add_tokens([f"v{i}" for i in range(90)] + base[10:50])
    queries = [data[0], data[1], data.encode_query_tokens(base[20:80])]
    return data, queries


class TestSerialParallelCounterParity:
    """Acceptance: serial and --jobs N merged counters are identical."""

    @pytest.mark.skipif(not HAVE_FORK, reason="fork start method required")
    @pytest.mark.parametrize("jobs", [2, 3])
    def test_counters_field_for_field(self, reuse_corpus, jobs):
        data, queries = reuse_corpus
        searcher = PKWiseSearcher(data, SearchParams(w=12, tau=3, k_max=2))
        serial = run_searcher(searcher, queries)
        parallel = run_searcher(searcher, queries, jobs=jobs, chunk_size=1)
        serial_snap = serial.stats.snapshot()
        parallel_snap = parallel.stats.snapshot()
        assert parallel_snap["counters"] == serial_snap["counters"]
        for name in STAT_COUNTER_FIELDS:
            assert getattr(parallel.stats, name) == getattr(serial.stats, name)

    @pytest.mark.skipif(not HAVE_FORK, reason="fork start method required")
    def test_metrics_snapshot_counters_match(self, reuse_corpus):
        data, queries = reuse_corpus
        searcher = PKWiseSearcher(data, SearchParams(w=12, tau=3, k_max=2))
        serial = run_searcher(searcher, queries).metrics_snapshot()
        parallel = run_searcher(searcher, queries, jobs=2).metrics_snapshot()
        assert parallel["metrics"]["counters"] == serial["metrics"]["counters"]

    @pytest.mark.skipif(not HAVE_FORK, reason="fork start method required")
    def test_aggregate_to_dict_round_trips_with_phases(self, reuse_corpus):
        data, queries = reuse_corpus
        searcher = PKWiseSearcher(data, SearchParams(w=12, tau=3, k_max=2))
        run = run_searcher(searcher, queries, jobs=2)
        payload = json.loads(json.dumps(run.to_dict()))
        assert set(payload["phases"]) == {
            "routing", "signature", "candidate", "verify",
        }
        for report in payload["workers"]:
            assert set(report["phases"]) == {
                "routing", "signature", "candidate", "verify", "other",
            }
            assert report["phases"]["other"] >= 0.0
        rebuilt = SearchStats.from_snapshot(
            SearchStats(**{
                key: value
                for key, value in payload["stats"].items()
                if key != "total_time"
            }).snapshot()
        )
        assert rebuilt.num_results == run.stats.num_results


class TestTracer:
    def test_disabled_tracer_is_noop_and_reusable(self):
        tracer = Tracer()
        assert not tracer.enabled
        first = tracer.span("a")
        second = tracer.span("b", attr=1)
        assert first is second  # the shared null span: no allocation
        with first as entered:
            entered.annotate(more=2)

    def test_span_events_form_a_tree(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = Tracer(str(path))
        with tracer.span("root", kind="outer"):
            with tracer.span("child") as child:
                child.annotate(items=3)
        tracer.close()
        events = [json.loads(line) for line in path.read_text().splitlines()]
        assert [event["name"] for event in events] == ["child", "root"]
        child_event, root_event = events
        assert child_event["parent_id"] == root_event["span_id"]
        assert child_event["depth"] == 1
        assert root_event["parent_id"] is None
        assert child_event["attrs"] == {"items": 3}
        assert root_event["duration"] >= child_event["duration"] >= 0.0

    def test_span_records_errors(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = Tracer(str(path))
        with pytest.raises(ValueError):
            with tracer.span("failing"):
                raise ValueError("boom")
        tracer.close()
        (event,) = [json.loads(line) for line in path.read_text().splitlines()]
        assert event["error"] == "ValueError"

    def test_default_tracer_configure_and_disable(self, tmp_path):
        path = tmp_path / "default.jsonl"
        configure_tracing(str(path))
        try:
            assert get_tracer().enabled
            with get_tracer().span("configured"):
                pass
            get_tracer().flush()
            assert "configured" in path.read_text()
        finally:
            disable_tracing()
        assert not get_tracer().enabled

    def test_search_emits_spans_when_enabled(self, tmp_path, reuse_corpus):
        data, queries = reuse_corpus
        searcher = PKWiseSearcher(data, SearchParams(w=12, tau=3, k_max=2))
        path = tmp_path / "search.jsonl"
        configure_tracing(str(path))
        try:
            run_searcher(searcher, queries)
            get_tracer().flush()
        finally:
            disable_tracing()
        events = [json.loads(line) for line in path.read_text().splitlines()]
        names = [event["name"] for event in events]
        assert names.count("pkwise.search") == len(queries)
        assert "workload.serial" in names
        search_events = [e for e in events if e["name"] == "pkwise.search"]
        for event in search_events:
            assert {"signature", "candidate", "verify"} <= set(event["attrs"])

    def test_search_results_unchanged_by_tracing(self, tmp_path, reuse_corpus):
        data, queries = reuse_corpus
        searcher = PKWiseSearcher(data, SearchParams(w=12, tau=3, k_max=2))
        baseline = [searcher.search(query).sorted_pairs() for query in queries]
        configure_tracing(str(tmp_path / "t.jsonl"))
        try:
            traced = [searcher.search(query).sorted_pairs() for query in queries]
        finally:
            disable_tracing()
        assert traced == baseline
