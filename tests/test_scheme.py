"""Tests for PartitionScheme (classes, sub-partitions, validation)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import PartitionScheme, equi_width_scheme
from repro.errors import PartitioningError


class TestClassLookup:
    def test_single_class(self):
        scheme = PartitionScheme.single(100)
        assert scheme.k_max == 1
        assert scheme.class_of(0) == 1
        assert scheme.class_of(99) == 1

    def test_borders(self):
        scheme = PartitionScheme(universe_size=10, borders=(3, 7))
        assert [scheme.class_of(r) for r in range(10)] == [
            1, 1, 1, 2, 2, 2, 2, 3, 3, 3,
        ]

    def test_negative_rank_is_class1(self):
        scheme = PartitionScheme(universe_size=10, borders=(0,))
        assert scheme.class_of(-1) == 1
        assert scheme.class_of(0) == 2  # class 1 empty

    def test_class_range(self):
        scheme = PartitionScheme(universe_size=10, borders=(3, 7))
        assert scheme.class_range(1) == (0, 3)
        assert scheme.class_range(2) == (3, 7)
        assert scheme.class_range(3) == (7, 10)

    def test_class_range_out_of_bounds(self):
        scheme = PartitionScheme(universe_size=10, borders=(5,))
        with pytest.raises(PartitioningError):
            scheme.class_range(0)
        with pytest.raises(PartitioningError):
            scheme.class_range(3)

    def test_class_sizes(self):
        scheme = PartitionScheme(universe_size=10, borders=(3, 7))
        assert scheme.class_sizes() == [3, 4, 3]

    def test_empty_classes_allowed(self):
        scheme = PartitionScheme(universe_size=10, borders=(0, 0, 10))
        assert scheme.class_sizes() == [0, 0, 10, 0]


class TestValidation:
    def test_rejects_decreasing_borders(self):
        with pytest.raises(PartitioningError):
            PartitionScheme(universe_size=10, borders=(7, 3))

    def test_rejects_out_of_range_borders(self):
        with pytest.raises(PartitioningError):
            PartitionScheme(universe_size=10, borders=(11,))

    def test_rejects_negative_universe(self):
        with pytest.raises(PartitioningError):
            PartitionScheme(universe_size=-1)

    def test_rejects_bad_m(self):
        with pytest.raises(PartitioningError):
            PartitionScheme(universe_size=10, m=0)


class TestSubPartitions:
    def test_class1_never_subdivided(self):
        scheme = PartitionScheme(universe_size=12, borders=(6,), m=3)
        for rank in range(6):
            assert scheme.group_of(rank) == (1, 0)

    def test_equi_width_subpartitions(self):
        scheme = PartitionScheme(universe_size=12, borders=(6,), m=3)
        # Class 2 covers [6, 12): width 6, three sub-partitions of 2.
        assert scheme.group_of(6) == (2, 0)
        assert scheme.group_of(7) == (2, 0)
        assert scheme.group_of(8) == (2, 1)
        assert scheme.group_of(10) == (2, 2)
        assert scheme.group_of(11) == (2, 2)

    def test_remainder_goes_to_last_subpartition(self):
        scheme = PartitionScheme(universe_size=10, borders=(3,), m=3)
        # Class 2 covers [3, 10): width 7, m=3.
        subs = [scheme.group_of(r)[1] for r in range(3, 10)]
        assert subs == sorted(subs)
        assert max(subs) == 2

    def test_group_key_encodes_class(self):
        scheme = PartitionScheme(universe_size=12, borders=(6,), m=3)
        for rank in range(12):
            key = scheme.group_key(rank)
            class_index, sub = scheme.group_of(rank)
            assert key == class_index * 3 + sub
            assert key // 3 == class_index

    @settings(max_examples=40, deadline=None)
    @given(
        universe=st.integers(1, 200),
        m=st.integers(1, 5),
        data=st.data(),
    )
    def test_groups_are_contiguous(self, universe, m, data):
        num_borders = data.draw(st.integers(0, 3))
        borders = tuple(
            sorted(
                data.draw(st.integers(0, universe)) for _ in range(num_borders)
            )
        )
        scheme = PartitionScheme(universe_size=universe, borders=borders, m=m)
        keys = [scheme.group_key(rank) for rank in range(universe)]
        # Contiguity: each group key occupies one contiguous rank range.
        seen = set()
        previous = None
        for key in keys:
            if key != previous:
                assert key not in seen
                seen.add(key)
            previous = key


class TestFactories:
    def test_equi_width(self):
        scheme = equi_width_scheme(100, 4)
        assert scheme.borders == (25, 50, 75)
        assert scheme.class_sizes() == [25, 25, 25, 25]

    def test_equi_width_k1(self):
        assert equi_width_scheme(100, 1).borders == ()

    def test_equi_width_rejects_bad_k(self):
        with pytest.raises(PartitioningError):
            equi_width_scheme(100, 0)

    def test_all_k(self):
        scheme = PartitionScheme.all_k(50, 3)
        assert scheme.k_max == 3
        assert scheme.class_sizes() == [0, 0, 50]
        assert scheme.class_of(10) == 3

    def test_with_borders_and_m(self):
        scheme = PartitionScheme(universe_size=10, borders=(5,))
        assert scheme.with_borders((3,)).borders == (3,)
        assert scheme.with_m(4).m == 4

    def test_describe(self):
        scheme = PartitionScheme(universe_size=10, borders=(5,), m=2)
        text = scheme.describe()
        assert "class 1" in text and "m=2" in text
