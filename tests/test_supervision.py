"""Tests for replica failover (ShardRouter) and ShardSupervisor healing.

Three layers, progressively less faked:

* ``TestReplicaFailover`` / ``TestRouterReplicaAdmin`` — the real
  router over in-process replicas, with faults injected at the named
  scatter/failover points.
* ``TestSupervisorStateMachine`` — the real supervisor driven with
  fake processes, a fake router, and a fake clock, so every transition
  (ok → dead → restarting → readmitted / quarantined) is exercised
  deterministically, including the generation-consistency gate.
* ``TestWorkerStartup`` / ``TestEndToEndSelfHealing`` — real
  subprocesses: fail-fast startup diagnostics, and the acceptance
  scenario (SIGKILL one of R=2 workers under a live query stream →
  zero failed queries, pair-identical results, automatic re-admission).
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time

import pytest

from repro import (
    ConfigurationError,
    FaultPlan,
    FaultSpec,
    PKWiseSearcher,
    SearchParams,
    faults,
)
from repro.errors import WorkerStartupError
from repro.eval.harness import canonical_pair_order
from repro.persistence import generation_name
from repro.service import (
    ShardPlan,
    ShardRouter,
    ShardSupervisor,
    ShardWorker,
    backends_for_workers,
    spawn_shard_workers,
    stop_shard_workers,
)
from repro.service.shards import ShardSpec, _read_serving_line
from repro.service.supervisor import (
    STATE_DEAD,
    STATE_OK,
    STATE_QUARANTINED,
)

PARAMS = SearchParams(w=10, tau=2, k_max=3)


@pytest.fixture(autouse=True)
def _clear_fault_plan():
    yield
    faults.clear_plan()


@pytest.fixture
def query(small_corpus):
    """A query cut from doc 0 — matches docs 0 and 3 (different shards)."""
    tokens = small_corpus[0].tokens[8:38]
    words = small_corpus.vocabulary.decode(tokens)
    return small_corpus.encode_query_tokens(words, name="cross-shard")


def expected_pairs(corpus, query):
    searcher = PKWiseSearcher(corpus, PARAMS)
    return canonical_pair_order(list(searcher.search(query).pairs))


def counters(registry) -> dict:
    return registry.snapshot()["counters"]


# ----------------------------------------------------------------------
class TestReplicaFailover:
    @pytest.mark.parametrize("replicas", [1, 2])
    def test_replicated_router_matches_single_index(
        self, small_corpus, query, replicas
    ):
        single = expected_pairs(small_corpus, query)
        assert single, "fixture query must produce matches"
        with ShardRouter.local(
            small_corpus, PARAMS, shards=2, replicas=replicas
        ) as router:
            response = router.search(query)
            assert list(response.pairs) == single
            assert not response.partial

    def test_single_replica_failure_is_invisible(self, small_corpus, query):
        # Replica 0 of shard 0 fails on every attempt; with R=2 the
        # router fails over to replica 1 and the caller sees a full,
        # non-partial answer — zero QueryFailures.
        single = expected_pairs(small_corpus, query)
        with ShardRouter.local(
            small_corpus, PARAMS, shards=2, replicas=2
        ) as router:
            faults.install_plan(
                FaultPlan(
                    [
                        FaultSpec(
                            point="shards.scatter",
                            kind="raise",
                            match={"shard": 0, "replica": 0},
                        )
                    ]
                )
            )
            response = router.search(query)
            assert not response.partial
            assert response.failures == []
            assert list(response.pairs) == single
            metrics = router.metrics_snapshot()["metrics"]["counters"]
            assert metrics["router.failovers"] >= 1
            assert metrics["router.replica_failures"] >= 1
            assert metrics["router.replica_failures.shard000.r0"] >= 1

    def test_failed_replica_is_deprioritized_next_query(
        self, small_corpus, query
    ):
        # Query 1 pays one failover; afterwards the down marker moves
        # the bad replica to the back of the preference order, so query
        # 2 starts on the healthy sibling and pays nothing.
        with ShardRouter.local(
            small_corpus, PARAMS, shards=2, replicas=2
        ) as router:
            faults.install_plan(
                FaultPlan(
                    [
                        FaultSpec(
                            point="shards.scatter",
                            kind="raise",
                            match={"shard": 0, "replica": 0},
                            max_triggers=1,
                        )
                    ]
                )
            )
            assert not router.search(query).partial
            failovers_after_first = router.metrics_snapshot()["metrics"][
                "counters"
            ]["router.failovers"]
            assert failovers_after_first == 1
            assert not router.search(query).partial
            assert (
                router.metrics_snapshot()["metrics"]["counters"][
                    "router.failovers"
                ]
                == failovers_after_first
            )

    def test_all_replicas_failed_reports_shard_failure(
        self, small_corpus, query
    ):
        single = expected_pairs(small_corpus, query)
        with ShardRouter.local(
            small_corpus, PARAMS, shards=2, replicas=2
        ) as router:
            lo, hi = router.backends[1].doc_lo, router.backends[1].doc_hi
            faults.install_plan(
                FaultPlan(
                    [
                        FaultSpec(
                            point="shards.scatter",
                            kind="raise",
                            match={"shard": 1},
                        )
                    ]
                )
            )
            response = router.search(query)
            assert response.partial
            assert len(response.failures) == 1
            failure = response.failures[0]
            assert failure.position == 1
            assert failure.attempts == 2  # primary + failover, both tried
            survivors = [tuple(p) for p in single if not lo <= p[0] < hi]
            assert [tuple(p) for p in response.pairs] == survivors

    def test_failover_fault_point_fires(self, small_corpus, query):
        # Kill the primary, then make the failover attempt itself die
        # at the shards.failover point: the shard must fail with the
        # injected failover error, proving the point sits on the path.
        with ShardRouter.local(
            small_corpus, PARAMS, shards=2, replicas=2
        ) as router:
            faults.install_plan(
                FaultPlan(
                    [
                        FaultSpec(
                            point="shards.scatter",
                            kind="raise",
                            match={"shard": 0, "replica": 0},
                        ),
                        FaultSpec(
                            point="shards.failover",
                            kind="raise",
                            match={"shard": 0},
                        ),
                    ]
                )
            )
            response = router.search(query)
            assert response.partial
            assert response.failures[0].position == 0
            assert response.failures[0].error_type == "FaultInjectionError"


# ----------------------------------------------------------------------
class TestRouterReplicaAdmin:
    def test_backends_property_returns_primaries(self, small_corpus):
        with ShardRouter.local(
            small_corpus, PARAMS, shards=2, replicas=2
        ) as router:
            assert router.num_shards == 2
            assert len(router.backends) == 2
            assert [b.replica for b in router.backends] == [0, 0]
            assert len(router.all_backends) == 4

    def test_mark_and_readmit_roundtrip(self, small_corpus):
        with ShardRouter.local(
            small_corpus, PARAMS, shards=2, replicas=2
        ) as router:
            rset = router.replica_sets[0]
            router.mark_replica_down(0, 0)
            assert rset.down == {0}
            assert [b.replica for b in rset.preference_order()] == [1, 0]
            router.readmit_replica(0, 0)
            assert rset.down == set()
            assert [b.replica for b in rset.preference_order()] == [0, 1]

    def test_replace_replica_validates_range_and_id(self, small_corpus):
        with ShardRouter.local(
            small_corpus, PARAMS, shards=2, replicas=2
        ) as router:
            wrong_range = router.replica_sets[1].replicas[0]
            with pytest.raises(ConfigurationError):
                router.replace_replica(0, 0, wrong_range)
            with pytest.raises(ConfigurationError):
                router.replace_replica(99, 0, router.backends[0])

    def test_mismatched_replica_ranges_rejected(self, small_corpus):
        with ShardRouter.local(small_corpus, PARAMS, shards=2) as router:
            a, b = router.backends
            # Same shard_id but different ranges cannot be replicas.
            b.shard_id = a.shard_id
            with pytest.raises(ConfigurationError):
                ShardRouter([a, b])

    def test_healthz_tracks_replica_health(self, small_corpus):
        with ShardRouter.local(
            small_corpus, PARAMS, shards=2, replicas=2
        ) as router:
            assert router.healthz()["status"] == "ok"
            # One replica of shard 0 dies: shard degraded, router
            # degraded, every query still fully answerable.
            router.replica_sets[0].replicas[0].service.close()
            health = router.healthz()
            assert health["status"] == "degraded"
            shard0 = health["shards"][0]
            assert shard0["status"] == "degraded"
            assert shard0["replicas_ok"] == 1
            assert shard0["num_replicas"] == 2
            # Its sibling dies too: the shard is down, the router stays
            # degraded (shard 1 still answers partial results).
            router.replica_sets[0].replicas[1].service.close()
            health = router.healthz()
            assert health["status"] == "degraded"
            assert health["shards"][0]["status"] == "down"
            assert health["shards_ok"] == 1


# ----------------------------------------------------------------------
# Supervisor state machine with fakes
# ----------------------------------------------------------------------
class FakeClock:
    def __init__(self) -> None:
        self.now = 100.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class FakeProcess:
    """subprocess.Popen stand-in with a controllable liveness flag."""

    _next_pid = 40_000

    def __init__(self) -> None:
        FakeProcess._next_pid += 1
        self.pid = FakeProcess._next_pid
        self.returncode: int | None = None
        self.stdout = None

    def poll(self) -> int | None:
        return self.returncode

    def wait(self, timeout: float | None = None) -> int:
        if self.returncode is None:
            raise subprocess.TimeoutExpired("fake", timeout or 0.0)
        return self.returncode

    def die(self, code: int = -9) -> None:
        self.returncode = code

    def terminate(self) -> None:
        self.die(-15)

    def kill(self) -> None:
        self.die(-9)


class FakeRouter:
    """Records the replica-admin calls the supervisor makes."""

    def __init__(self) -> None:
        self.down: list[tuple[int, int]] = []
        self.readmitted: list[tuple[int, int]] = []
        self.replaced: list[tuple[int, int, object]] = []
        self.supervisor = None

    def attach_supervisor(self, supervisor) -> None:
        self.supervisor = supervisor

    def mark_replica_down(self, shard_id: int, replica: int) -> None:
        self.down.append((shard_id, replica))

    def replace_replica(self, shard_id: int, replica: int, backend) -> None:
        self.replaced.append((shard_id, replica, backend))

    def readmit_replica(self, shard_id: int, replica: int) -> None:
        self.readmitted.append((shard_id, replica))


def make_spec(shard_id: int = 0, generation: int = 1) -> ShardSpec:
    return ShardSpec(
        shard_id=shard_id,
        doc_lo=0,
        doc_hi=3,
        path=generation_name(f"shard-{shard_id:03d}", generation),
        generation=generation,
    )


def make_worker(spec: ShardSpec, replica: int = 0) -> ShardWorker:
    return ShardWorker(
        spec=spec,
        process=FakeProcess(),
        url=f"http://fake.invalid/{spec.shard_id}/{replica}",
        replica=replica,
    )


class TestSupervisorStateMachine:
    def make_supervisor(self, workers, **kwargs):
        router = FakeRouter()
        clock = FakeClock()
        spawned: list[ShardWorker] = []

        def spawn(spec, replica):
            worker = make_worker(spec, replica)
            spawned.append(worker)
            return worker

        defaults = dict(
            spawn_worker=spawn,
            make_backend=lambda worker: ("backend", worker.url),
            probe=lambda worker: {"status": "ok"},
            clock=clock,
            max_crash_streak=2,
            backoff_base=1.0,
            backoff_cap=8.0,
        )
        defaults.update(kwargs)
        supervisor = ShardSupervisor(router, workers, **defaults)
        return supervisor, router, clock, spawned

    def test_healthy_sweep_is_a_no_op(self):
        worker = make_worker(make_spec())
        supervisor, router, _clock, spawned = self.make_supervisor([worker])
        supervisor.check_once()
        assert router.down == []
        assert spawned == []
        status = supervisor.status()
        assert [r["state"] for r in status["replicas"]] == [STATE_OK]
        assert counters(supervisor.metrics_registry) == {}

    def test_death_restart_readmit_cycle(self):
        workers = [make_worker(make_spec(), 0), make_worker(make_spec(), 1)]
        supervisor, router, _clock, spawned = self.make_supervisor(workers)
        workers[0].process.die(-9)
        supervisor.check_once()
        assert router.down == [(0, 0)]
        assert len(spawned) == 1
        assert router.replaced[0][:2] == (0, 0)
        assert router.readmitted == [(0, 0)]
        status = supervisor.status()
        by_replica = {r["replica"]: r for r in status["replicas"]}
        assert by_replica[0]["state"] == STATE_OK
        assert by_replica[0]["restarts"] == 1
        assert by_replica[1]["restarts"] == 0
        metrics = counters(supervisor.metrics_registry)
        assert metrics["supervisor.deaths"] == 1
        assert metrics["supervisor.restarts"] == 1
        assert metrics["supervisor.readmits"] == 1
        # The supervisor's worker list tracks the replacement.
        assert supervisor.workers[0] is spawned[0]

    def test_probe_failure_counts_as_death(self):
        worker = make_worker(make_spec())
        sick = {worker.pid}

        def probe(candidate):
            if candidate.pid in sick:
                raise OSError("connection refused")
            return {"status": "ok"}

        supervisor, router, _clock, spawned = self.make_supervisor(
            [worker], probe=probe
        )
        supervisor.check_once()
        assert router.down == [(0, 0)]
        assert len(spawned) == 1
        assert counters(supervisor.metrics_registry)["supervisor.deaths"] == 1

    def test_unhealthy_replacement_is_not_readmitted(self):
        worker = make_worker(make_spec())
        health: dict[str, str] = {}

        def probe(candidate):
            return {"status": health.get(candidate.url, "ok")}

        def spawn(spec, replica):
            replacement = make_worker(spec, replica)
            health[replacement.url] = "down"
            return replacement

        supervisor, router, _clock, _ = self.make_supervisor(
            [worker], probe=probe, spawn_worker=spawn
        )
        worker.process.die(-9)
        supervisor.check_once()
        assert router.replaced == []
        assert router.readmitted == []
        metrics = counters(supervisor.metrics_registry)
        assert metrics["supervisor.readmit_failures"] == 1
        record = supervisor.status()["replicas"][0]
        assert record["state"] in (STATE_DEAD, STATE_QUARANTINED)

    def test_crash_loop_quarantines_with_exponential_backoff(self):
        worker = make_worker(make_spec())

        def spawn(spec, replica):
            raise WorkerStartupError("snapshot gone", returncode=3)

        supervisor, router, clock, _ = self.make_supervisor(
            [worker], spawn_worker=spawn
        )
        worker.process.die(-9)
        supervisor.check_once()  # death + failed restart: streak 2
        supervisor.check_once()  # failed restart: streak 3 > 2 → quarantine
        status = supervisor.status()["replicas"][0]
        assert status["state"] == STATE_QUARANTINED
        assert status["retry_after"] == pytest.approx(1.0)  # base * 2^0
        assert "quarantined" in status["last_error"]
        metrics = counters(supervisor.metrics_registry)
        assert metrics["supervisor.quarantines"] == 1
        # Inside the backoff window nothing happens.
        clock.advance(0.5)
        supervisor.check_once()
        assert counters(supervisor.metrics_registry)[
            "supervisor.restart_failures"
        ] == 2
        # Past it, one more attempt — which fails and doubles the backoff.
        clock.advance(1.0)
        supervisor.check_once()
        status = supervisor.status()["replicas"][0]
        assert status["state"] == STATE_QUARANTINED
        assert status["retry_after"] == pytest.approx(2.0)  # base * 2^1
        assert counters(supervisor.metrics_registry)[
            "supervisor.quarantines"
        ] == 2

    def test_recovery_after_quarantine(self):
        worker = make_worker(make_spec())
        broken = {"yes": True}

        def spawn(spec, replica):
            if broken["yes"]:
                raise WorkerStartupError("still broken")
            return make_worker(spec, replica)

        supervisor, router, clock, _ = self.make_supervisor(
            [worker], spawn_worker=spawn
        )
        worker.process.die(-9)
        supervisor.check_once()
        supervisor.check_once()
        assert supervisor.status()["replicas"][0]["state"] == STATE_QUARANTINED
        broken["yes"] = False
        clock.advance(10.0)
        supervisor.check_once()
        record = supervisor.status()["replicas"][0]
        assert record["state"] == STATE_OK
        assert router.readmitted == [(0, 0)]

    def test_stale_generation_is_never_readmitted(self, tmp_path):
        # The manifest has moved to generation 2 (a rolling swap), but
        # the respawned worker reports generation 1: re-admitting it
        # would serve stale pairs from one replica, so the supervisor
        # must refuse, kill it, and retry with the current spec.
        current = make_spec(generation=2)
        ShardPlan(
            shards=(current,),
            num_documents=3,
            generation=2,
            params={},
            replicas=2,
        ).save(tmp_path)
        worker = make_worker(make_spec(generation=1))
        stale = {"yes": True}

        def spawn(spec, replica):
            if stale["yes"]:
                return make_worker(make_spec(generation=1), replica)
            return make_worker(spec, replica)

        supervisor, router, _clock, _ = self.make_supervisor(
            [worker], spawn_worker=spawn, directory=tmp_path
        )
        worker.process.die(-9)
        supervisor.check_once()
        assert router.readmitted == []
        metrics = counters(supervisor.metrics_registry)
        assert metrics["supervisor.readmit_failures"] == 1
        record = supervisor.status()["replicas"][0]
        assert "generation" in record["last_error"]
        # Once the spawn honors the manifest spec, healing completes.
        stale["yes"] = False
        supervisor.check_once()
        record = supervisor.status()["replicas"][0]
        assert record["state"] == STATE_OK
        assert router.readmitted == [(0, 0)]
        assert supervisor.workers[0].spec.generation == 2

    def test_supervisor_fault_points_fire(self):
        worker = make_worker(make_spec())
        # Generous streak budget: the two injected failures must not
        # tip the replica into quarantine before the healing sweep.
        supervisor, router, _clock, spawned = self.make_supervisor(
            [worker], max_crash_streak=5
        )
        worker.process.die(-9)
        faults.install_plan(
            FaultPlan(
                [FaultSpec(point="supervisor.restart", kind="raise")]
            )
        )
        supervisor.check_once()
        assert spawned == []
        assert counters(supervisor.metrics_registry)[
            "supervisor.restart_failures"
        ] == 1
        faults.install_plan(
            FaultPlan(
                [FaultSpec(point="supervisor.readmit", kind="raise")]
            )
        )
        supervisor.check_once()
        assert len(spawned) == 1
        assert router.readmitted == []
        assert counters(supervisor.metrics_registry)[
            "supervisor.readmit_failures"
        ] == 1
        faults.clear_plan()
        supervisor.check_once()
        assert router.readmitted == [(0, 0)]
        assert supervisor.status()["replicas"][0]["state"] == STATE_OK


# ----------------------------------------------------------------------
class TestWorkerStartup:
    def test_dead_worker_fails_fast_with_stderr(self, tmp_path):
        stderr_path = tmp_path / "worker.stderr"
        stderr_path.write_text("")
        with stderr_path.open("w") as stderr:
            process = subprocess.Popen(
                [
                    sys.executable,
                    "-c",
                    "import sys; sys.stderr.write('boom: no snapshot'); "
                    "sys.exit(3)",
                ],
                stdout=subprocess.PIPE,
                stderr=stderr,
                text=True,
            )
        start = time.monotonic()
        with pytest.raises(WorkerStartupError) as info:
            _read_serving_line(process, 30.0, stderr_path=stderr_path)
        assert time.monotonic() - start < 10.0  # fail fast, not timeout
        assert info.value.returncode == 3
        assert "boom: no snapshot" in info.value.stderr
        process.stdout.close()

    def test_serving_line_parsed_even_if_process_exits_after(self):
        process = subprocess.Popen(
            [sys.executable, "-c", "print('SERVING http://127.0.0.1:1')"],
            stdout=subprocess.PIPE,
            text=True,
        )
        try:
            url = _read_serving_line(process, 30.0)
            assert url == "http://127.0.0.1:1"
        finally:
            process.wait()
            process.stdout.close()


# ----------------------------------------------------------------------
class TestEndToEndSelfHealing:
    def test_sigkill_under_load_zero_failures_then_heals(
        self, small_corpus, query, tmp_path
    ):
        single = expected_pairs(small_corpus, query)
        assert single
        plan = ShardPlan.build(
            small_corpus, PARAMS, tmp_path, num_shards=2, replicas=2
        )
        workers = spawn_shard_workers(tmp_path, plan, startup_timeout=120.0)
        router = None
        supervisor = None
        try:
            router = ShardRouter(
                backends_for_workers(workers, retries=0),
                small_corpus,
            )
            supervisor = ShardSupervisor(
                router, workers, directory=tmp_path, check_interval=0.2
            ).start()
            assert list(router.search(query).pairs) == single
            victim = workers[0]  # shard 0, replica 0
            os.kill(victim.pid, signal.SIGKILL)
            # Sustained queries across the outage: every one must be
            # complete and pair-identical — the failover hides the kill.
            deadline = time.monotonic() + 60.0
            healed = False
            while time.monotonic() < deadline:
                response = router.search(query)
                assert response.failures == []
                assert list(response.pairs) == single
                states = [
                    (r["state"], r["restarts"])
                    for r in supervisor.status()["replicas"]
                ]
                if all(state == STATE_OK for state, _ in states) and any(
                    restarts >= 1 for _, restarts in states
                ):
                    healed = True
                    break
                time.sleep(0.1)
            assert healed, f"supervisor never healed: {supervisor.status()}"
            # healthz returns to ok with no operator action, and the
            # healed replica serves identical pairs.
            assert router.healthz()["status"] == "ok"
            assert list(router.search(query).pairs) == single
            metrics = router.metrics_snapshot()["metrics"]["counters"]
            assert metrics["supervisor.restarts"] >= 1
            assert metrics["supervisor.readmits"] >= 1
        finally:
            if supervisor is not None:
                supervisor.stop()
            if router is not None:
                router.close()
            stop_shard_workers(
                supervisor.workers if supervisor is not None else workers
            )
