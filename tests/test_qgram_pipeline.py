"""End-to-end search over q-gram tokenization.

The paper notes the algorithms are tokenization-independent ("a token
can be a word, a q-gram, etc.").  These tests run the full pipeline
with a :class:`QGramTokenizer` and check the robustness profile that
q-gram tokens induce: one word substitution perturbs q grams, so the
effective tolerance in *words* is roughly ``tau / q``.
"""

from __future__ import annotations

import random

from repro import DocumentCollection, PKWiseSearcher, SearchParams
from repro.tokenize import QGramTokenizer


def make_collection(q=2):
    return DocumentCollection(tokenizer=QGramTokenizer(q=q))


class TestQGramPipeline:
    def test_exact_copy_found(self):
        rng = random.Random(0)
        data = make_collection()
        words = [f"w{rng.randrange(300)}" for _ in range(120)]
        data.add_text(" ".join(words))
        query = data.encode_query(" ".join(words[20:80]))
        params = SearchParams(w=20, tau=2, k_max=2)
        searcher = PKWiseSearcher(data, params)
        result = searcher.search(query)
        assert any(pair.overlap == 20 for pair in result.pairs)

    def test_one_word_edit_costs_q_grams(self):
        rng = random.Random(1)
        q = 2
        data = make_collection(q=q)
        words = [f"w{rng.randrange(300)}" for _ in range(80)]
        data.add_text(" ".join(words))
        edited = list(words[10:50])
        edited[20] = "REPLACED"
        query = data.encode_query(" ".join(edited))
        # One substituted word destroys q = 2 grams; tau = q tolerates it.
        params_tight = SearchParams(w=30, tau=1, k_max=2)
        params_loose = SearchParams(w=30, tau=q, k_max=2)
        tight = PKWiseSearcher(data, params_tight).search(query)
        loose = PKWiseSearcher(data, params_loose).search(query)
        # The edit sits mid-segment: windows spanning it need tau >= q.
        spanning_loose = [
            p for p in loose.pairs if p.query_start <= 20 <= p.query_start + 29
        ]
        spanning_tight = [
            p for p in tight.pairs if p.query_start <= 20 <= p.query_start + 29
        ]
        assert spanning_loose
        assert len(spanning_tight) < len(spanning_loose)

    def test_vocabulary_contains_grams(self):
        data = make_collection()
        data.add_text("a b c")
        gram = data.vocabulary.token_of(0)
        assert "␟" in gram  # the q-gram separator
