"""Public API surface and error-hierarchy tests."""

from __future__ import annotations

import pytest

import repro
from repro import (
    ConfigurationError,
    CorpusError,
    IndexStateError,
    PartitioningError,
    ReproError,
    TokenizationError,
)


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "error",
        [
            ConfigurationError,
            TokenizationError,
            CorpusError,
            PartitioningError,
            IndexStateError,
        ],
    )
    def test_subclass_of_repro_error(self, error):
        assert issubclass(error, ReproError)
        assert issubclass(error, Exception)

    def test_catchable_as_family(self):
        with pytest.raises(ReproError):
            raise ConfigurationError("boom")


class TestPublicSurface:
    def test_all_exports_resolve(self):
        import warnings

        # Deprecated aliases stay in __all__ on purpose; resolving them
        # warns, which is their job, not a test failure.
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            for name in repro.__all__:
                assert hasattr(repro, name), f"__all__ lists missing name {name}"

    def test_version_string(self):
        assert repro.__version__.count(".") == 2

    def test_quickstart_from_docstring(self):
        # The module docstring's quickstart must actually work.
        from repro import DocumentCollection, PKWiseSearcher, SearchParams

        data = DocumentCollection()
        data.add_text(
            "the lord of the rings is a famous novel about a ring of power"
        )
        query = data.encode_query(
            "the lord of the rings was a famous novel about a ring of power"
        )
        params = SearchParams(w=8, tau=2, k_max=2)
        searcher = PKWiseSearcher(data, params)
        matches = searcher.search(query)
        assert len(matches.pairs) > 0
