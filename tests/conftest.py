"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import random
from collections import Counter

import pytest

from repro import DocumentCollection, GlobalOrder, SearchParams


@pytest.fixture
def paper_example():
    """The running example of the paper (Example 1): d and q, w=4, tau=1."""
    data = DocumentCollection()
    data.add_text("the lord of the rings")
    query = data.encode_query("the lord and the kings")
    params = SearchParams(w=4, tau=1, k_max=2)
    return data, query, params


@pytest.fixture
def small_corpus():
    """A small deterministic corpus with genuine repeated segments."""
    rng = random.Random(1234)
    data = DocumentCollection()
    vocab = [f"w{i}" for i in range(60)]
    docs = []
    for _ in range(6):
        docs.append([vocab[rng.randrange(len(vocab))] for _ in range(80)])
    # Copy a segment of doc 0 into doc 3 with one substitution.
    segment = docs[0][10:40]
    segment[5] = "w999"
    docs[3][20:50] = segment
    for tokens in docs:
        data.add_tokens(tokens)
    return data


def random_collection(rng: random.Random, *, max_docs=4, max_len=40, max_vocab=25):
    """A random collection + query for randomized equivalence tests."""
    vocab = rng.randint(3, max_vocab)
    data = DocumentCollection()
    for _ in range(rng.randint(1, max_docs)):
        length = rng.randint(5, max_len)
        data.add_tokens([f"t{rng.randrange(vocab)}" for _ in range(length)])
    query = data.encode_query_tokens(
        [f"t{rng.randrange(vocab)}" for _ in range(rng.randint(5, max_len))]
    )
    return data, query


def brute_force_pairs(data: DocumentCollection, query, w: int, tau: int) -> set:
    """Reference implementation: every window pair, one-shot overlaps."""
    out = set()
    query_tokens = query.tokens
    for document in data:
        for i in range(document.num_windows(w)):
            counts = Counter(document.tokens[i : i + w])
            for j in range(max(0, len(query_tokens) - w + 1)):
                window = query_tokens[j : j + w]
                query_counts = Counter(window)
                overlap = sum(
                    min(count, query_counts[token]) for token, count in counts.items()
                )
                if w - overlap <= tau:
                    out.add((document.doc_id, i, j, overlap))
    return out


def pairs_as_set(result) -> set:
    """MatchPair list -> comparable set of tuples."""
    return set(map(tuple, result.pairs if hasattr(result, "pairs") else result))
