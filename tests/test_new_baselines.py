"""Tests for the Winnowing and MinHash-LSH baselines."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import DocumentCollection, GlobalOrder, SearchParams
from repro.baselines import MinHashLSHSearcher, WinnowingSearcher
from repro.baselines.minhash import sliding_window_minima

from .conftest import brute_force_pairs, pairs_as_set, random_collection


class TestSlidingWindowMinima:
    def test_basic(self):
        assert sliding_window_minima([3, 1, 4, 1, 5], 2) == [1, 1, 1, 1]
        assert sliding_window_minima([3, 1, 4, 1, 5], 3) == [1, 1, 1]

    def test_window_equals_length(self):
        assert sliding_window_minima([5, 2, 9], 3) == [2]

    def test_too_short(self):
        assert sliding_window_minima([1, 2], 5) == []

    @settings(max_examples=60, deadline=None)
    @given(
        values=st.lists(st.integers(-100, 100), min_size=1, max_size=50),
        w=st.integers(1, 12),
    )
    def test_matches_naive(self, values, w):
        expected = [
            min(values[i : i + w]) for i in range(max(0, len(values) - w + 1))
        ]
        assert sliding_window_minima(values, w) == expected


class TestWinnowing:
    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 1_000_000))
    def test_subset_of_exact(self, seed):
        rng = random.Random(seed)
        data, query = random_collection(rng)
        w = rng.randint(4, 10)
        tau = rng.randint(0, min(2, w - 2))
        params = SearchParams(w=w, tau=tau, k_max=1)
        order = GlobalOrder(data, w)
        expected = brute_force_pairs(data, query, w, tau)
        winnowing = WinnowingSearcher(data, params, order=order)
        assert pairs_as_set(winnowing.search(query)) <= expected

    def test_finds_verbatim_copy(self):
        rng = random.Random(1)
        data = DocumentCollection()
        tokens = [f"t{rng.randrange(300)}" for _ in range(150)]
        data.add_tokens(tokens)
        query = data.encode_query_tokens(tokens[30:120])
        params = SearchParams(w=20, tau=2, k_max=1)
        winnowing = WinnowingSearcher(data, params)
        assert any(p.overlap == 20 for p in winnowing.search(query).pairs)

    def test_differs_from_fbw_selection(self):
        # Same corpus, different fingerprints (hash-min vs frequency-min).
        from repro.baselines import FBWSearcher

        rng = random.Random(2)
        data = DocumentCollection()
        for _ in range(3):
            data.add_tokens([f"t{rng.randrange(40)}" for _ in range(120)])
        params = SearchParams(w=20, tau=2, k_max=1)
        order = GlobalOrder(data, 20)
        fbw = FBWSearcher(data, params, order=order)
        winnowing = WinnowingSearcher(data, params, order=order)
        assert set(fbw._fingerprints) != set(winnowing._fingerprints)


class TestMinHashLSH:
    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 1_000_000))
    def test_subset_of_exact(self, seed):
        rng = random.Random(seed)
        data, query = random_collection(rng, max_docs=2, max_len=30)
        w = rng.randint(4, 8)
        tau = rng.randint(0, min(2, w - 2))
        params = SearchParams(w=w, tau=tau, k_max=1)
        order = GlobalOrder(data, w)
        expected = brute_force_pairs(data, query, w, tau)
        searcher = MinHashLSHSearcher(data, params, order=order)
        assert pairs_as_set(searcher.search(query)) <= expected

    def test_finds_verbatim_copy(self):
        rng = random.Random(4)
        data = DocumentCollection()
        tokens = [f"t{rng.randrange(500)}" for _ in range(200)]
        data.add_tokens(tokens)
        query = data.encode_query_tokens(tokens[40:160])
        params = SearchParams(w=25, tau=3, k_max=1)
        searcher = MinHashLSHSearcher(data, params)
        pairs = searcher.search(query).pairs
        # Identical windows share every band: always candidates.
        assert sum(1 for p in pairs if p.overlap == 25) >= 90

    def test_rejects_bad_band_config(self):
        data = DocumentCollection()
        data.add_text("a b c d e")
        params = SearchParams(w=3, tau=1, k_max=1)
        with pytest.raises(ValueError):
            MinHashLSHSearcher(data, params, num_hashes=10, bands=3)
        with pytest.raises(ValueError):
            MinHashLSHSearcher(data, params, num_hashes=0, bands=1)

    def test_deterministic_given_seed(self):
        rng = random.Random(6)
        data = DocumentCollection()
        data.add_tokens([f"t{rng.randrange(50)}" for _ in range(80)])
        query = data.encode_query_tokens([f"t{rng.randrange(50)}" for _ in range(40)])
        params = SearchParams(w=10, tau=2, k_max=1)
        a = MinHashLSHSearcher(data, params, seed=3).search(query)
        b = MinHashLSHSearcher(data, params, seed=3).search(query)
        assert pairs_as_set(a) == pairs_as_set(b)

    def test_short_query(self):
        data = DocumentCollection()
        data.add_text("a b c d e f g h i j")
        params = SearchParams(w=5, tau=1, k_max=1)
        searcher = MinHashLSHSearcher(data, params)
        assert searcher.search(data.encode_query("a b")).pairs == []

    def test_index_entries(self):
        data = DocumentCollection()
        data.add_text("a b c d e f")
        params = SearchParams(w=3, tau=1, k_max=1)
        searcher = MinHashLSHSearcher(data, params, num_hashes=8, bands=4)
        # 4 windows x 4 bands.
        assert searcher.index_entries == 16
