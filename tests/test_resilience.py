"""Client resilience: retry policy, circuit breaker, retry_after hygiene.

The retry loop and the breaker are tested deterministically by driving
:meth:`ResilientClient._call` with scripted ``send`` callables and fake
``rng``/``clock``/``sleep`` hooks; a final integration class exercises
the real HTTP stack against a scripted in-thread server (429 → 200,
persistent 500s, connection refused) and fault injection inside a live
:class:`SearchService`.
"""

from __future__ import annotations

import json
import threading
import urllib.error
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import pytest

from repro import (
    CircuitOpenError,
    DeadlineExceededError,
    DocumentCollection,
    FaultPlan,
    FaultSpec,
    PKWiseSearcher,
    ReproError,
    SearchParams,
    SearchService,
    ServiceError,
    ServiceOverloadError,
    faults,
)
from repro.service import CircuitBreaker, ResilientClient, serve_http
from repro.service.client import MIN_RETRY_AFTER, _parse_retry_after


@pytest.fixture(autouse=True)
def _clean_plan():
    faults.clear_plan()
    yield
    faults.clear_plan()


class FakeClock:
    def __init__(self) -> None:
        self.now = 100.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class ZeroRng:
    """random.Random stand-in whose uniform draw is always the low end."""

    def uniform(self, low: float, high: float) -> float:
        return low


class MaxRng:
    """random.Random stand-in whose uniform draw is always the high end."""

    def uniform(self, low: float, high: float) -> float:
        return high


def make_client(**kwargs) -> tuple[ResilientClient, FakeClock, list[float]]:
    """A ResilientClient with fake time: sleeps advance the clock."""
    clock = FakeClock()
    sleeps: list[float] = []

    def sleep(seconds: float) -> None:
        sleeps.append(seconds)
        clock.advance(seconds)

    kwargs.setdefault("rng", ZeroRng())
    kwargs.setdefault("backoff", 0.0)
    client = ResilientClient(
        "http://test.invalid", clock=clock, sleep=sleep, **kwargs
    )
    return client, clock, sleeps


def http_error(status: int, message: str = "server error") -> ReproError:
    error = ReproError(message)
    error.status = status
    return error


class ScriptedSend:
    """Yields the scripted outcomes in order; exceptions are raised.

    Records the per-attempt socket timeout the retry loop passed in,
    so tests can assert the deadline clamp.
    """

    def __init__(self, outcomes) -> None:
        self.outcomes = list(outcomes)
        self.calls = 0
        self.timeouts: list[float | None] = []

    def __call__(self, timeout=None):
        self.calls += 1
        self.timeouts.append(timeout)
        outcome = self.outcomes.pop(0)
        if isinstance(outcome, Exception):
            raise outcome
        return outcome


class TestParseRetryAfter:
    """Satellite fix: malformed retry_after must clamp, never raise."""

    def test_normal_value_passes_through(self):
        assert _parse_retry_after(1.5) == 1.5

    def test_numeric_string_parses(self):
        assert _parse_retry_after("2.5") == 2.5

    @pytest.mark.parametrize("bad", [-1.0, -0.001, 0.0, "0", 1e-9])
    def test_nonpositive_clamps_to_floor(self, bad):
        assert _parse_retry_after(bad) == MIN_RETRY_AFTER

    @pytest.mark.parametrize(
        "junk", [None, "soon", "", [], {}, "nan?", object()]
    )
    def test_non_numeric_falls_back_to_default(self, junk):
        assert _parse_retry_after(junk, default=1.25) == 1.25

    @pytest.mark.parametrize("weird", ["nan", "inf", "-inf", float("nan")])
    def test_non_finite_falls_back_to_default(self, weird):
        assert _parse_retry_after(weird, default=0.75) == 0.75


class TestCircuitBreaker:
    def make(self, threshold: int = 3, reset_after: float = 10.0):
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=threshold, reset_after=reset_after, clock=clock
        )
        return breaker, clock

    def test_opens_after_threshold_consecutive_failures(self):
        breaker, _clock = self.make(threshold=3)
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == "closed"
        breaker.record_failure()
        assert breaker.state == "open"
        with pytest.raises(CircuitOpenError) as info:
            breaker.allow()
        assert info.value.retry_after == pytest.approx(10.0)

    def test_success_resets_the_count(self):
        breaker, _clock = self.make(threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == "closed"

    def test_half_open_probe_then_close(self):
        breaker, clock = self.make(threshold=1, reset_after=10.0)
        breaker.record_failure()
        assert breaker.state == "open"
        clock.advance(10.0)
        breaker.allow()  # the probe is admitted
        assert breaker.state == "half-open"
        with pytest.raises(CircuitOpenError):
            breaker.allow()  # concurrent request while probe in flight
        breaker.record_success()
        assert breaker.state == "closed"
        breaker.allow()

    def test_half_open_probe_failure_reopens(self):
        breaker, clock = self.make(threshold=1, reset_after=10.0)
        breaker.record_failure()
        clock.advance(10.0)
        breaker.allow()
        breaker.record_failure()  # probe failed
        assert breaker.state == "open"
        with pytest.raises(CircuitOpenError):
            breaker.allow()  # cooldown restarted
        clock.advance(10.0)
        breaker.allow()
        assert breaker.state == "half-open"

    def test_retry_after_counts_down(self):
        breaker, clock = self.make(threshold=1, reset_after=10.0)
        breaker.record_failure()
        clock.advance(4.0)
        with pytest.raises(CircuitOpenError) as info:
            breaker.allow()
        assert info.value.retry_after == pytest.approx(6.0)

    def test_threshold_validated(self):
        with pytest.raises(ValueError, match="failure_threshold"):
            CircuitBreaker(failure_threshold=0)


class TestCircuitBreakerConcurrency:
    """Real threads hammering one breaker: the lock must hold its story."""

    def _contend(self, workers: int, action) -> list:
        """Run ``action()`` on ``workers`` threads released together."""
        barrier = threading.Barrier(workers)
        results: list = [None] * workers
        def run(slot: int) -> None:
            barrier.wait()
            results[slot] = action()
        threads = [
            threading.Thread(target=run, args=(slot,))
            for slot in range(workers)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        return results

    def test_half_open_admits_exactly_one_probe(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=1, reset_after=10.0, clock=clock
        )
        breaker.record_failure()
        clock.advance(10.0)

        def try_allow() -> str:
            try:
                breaker.allow()
            except CircuitOpenError:
                return "rejected"
            return "admitted"

        results = self._contend(16, try_allow)
        assert results.count("admitted") == 1
        assert breaker.state == "half-open"

    def test_concurrent_failures_during_half_open_single_trip(self):
        # The probe fails while stale in-flight requests also report
        # failures: the breaker must land in one clean "open" cooldown,
        # and the eventual successful probe must fully reset the
        # failure count (no leftover ghost failures from the pile-up).
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=3, reset_after=10.0, clock=clock
        )
        for _ in range(3):
            breaker.record_failure()
        clock.advance(10.0)
        breaker.allow()  # the probe
        assert breaker.state == "half-open"
        self._contend(16, breaker.record_failure)
        assert breaker.state == "open"
        with pytest.raises(CircuitOpenError) as info:
            breaker.allow()  # cooldown restarted by the (single) re-trip
        assert info.value.retry_after == pytest.approx(10.0)
        clock.advance(10.0)
        breaker.allow()  # next probe
        breaker.record_success()
        assert breaker.state == "closed"
        # Counter consistency: the pile-up left nothing behind — it
        # still takes a full threshold of fresh failures to re-open.
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == "closed"
        breaker.record_failure()
        assert breaker.state == "open"

    def test_closed_state_failure_counting_is_atomic(self):
        # N racing failures with threshold N must trip exactly at the
        # threshold — a lost update would leave the breaker closed.
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=16, reset_after=10.0, clock=clock
        )
        self._contend(16, breaker.record_failure)
        assert breaker.state == "open"

    def test_mixed_allow_and_failure_race_keeps_state_legal(self):
        # Interleave admissions and failures from many threads; the
        # breaker must always be in exactly one legal state and never
        # raise anything but CircuitOpenError.
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=4, reset_after=0.0, clock=clock
        )

        def hammer() -> None:
            for _ in range(50):
                try:
                    breaker.allow()
                except CircuitOpenError:
                    breaker.record_failure()
                else:
                    breaker.record_success()

        self._contend(8, hammer)
        assert breaker.state in ("closed", "open", "half-open")
        breaker.record_success()
        assert breaker.state == "closed"


class TestRetryPolicy:
    def test_success_first_try(self):
        client, _clock, sleeps = make_client(retries=3)
        send = ScriptedSend([{"ok": True}])
        assert client._call(send) == {"ok": True}
        assert send.calls == 1
        assert sleeps == []

    def test_overload_then_success_honors_retry_after(self):
        client, _clock, sleeps = make_client(retries=3)
        send = ScriptedSend(
            [
                ServiceOverloadError("busy", retry_after=0.2),
                {"ok": True},
            ]
        )
        assert client._call(send) == {"ok": True}
        assert send.calls == 2
        assert sleeps == [pytest.approx(0.2)]
        assert client.breaker.state == "closed"

    def test_overload_is_breaker_neutral(self):
        client, _clock, _sleeps = make_client(retries=5, failure_threshold=2)
        send = ScriptedSend(
            [ServiceOverloadError("busy", retry_after=0.05)] * 4 + [{"ok": 1}]
        )
        assert client._call(send) == {"ok": 1}
        assert client.breaker.state == "closed"

    def test_5xx_retries_and_counts_toward_breaker(self):
        client, _clock, _sleeps = make_client(retries=2, failure_threshold=10)
        send = ScriptedSend([http_error(500), http_error(502), {"ok": 1}])
        assert client._call(send) == {"ok": 1}
        assert send.calls == 3

    def test_5xx_exhausted_raises_last_error(self):
        client, _clock, _sleeps = make_client(retries=2, failure_threshold=10)
        send = ScriptedSend([http_error(500, f"fail {i}") for i in range(3)])
        with pytest.raises(ReproError, match="fail 2"):
            client._call(send)
        assert send.calls == 3

    def test_4xx_raises_immediately_without_retry(self):
        client, _clock, _sleeps = make_client(retries=5)
        send = ScriptedSend([http_error(400, "bad request")])
        with pytest.raises(ReproError, match="bad request"):
            client._call(send)
        assert send.calls == 1

    def test_connect_error_wrapped_and_retried(self):
        client, _clock, _sleeps = make_client(retries=1, failure_threshold=10)
        send = ScriptedSend([urllib.error.URLError("refused"), {"ok": 1}])
        assert client._call(send) == {"ok": 1}

    def test_connect_errors_open_the_breaker(self):
        client, _clock, _sleeps = make_client(retries=5, failure_threshold=3)
        send = ScriptedSend([urllib.error.URLError("refused")] * 6)
        with pytest.raises(CircuitOpenError):
            client._call(send)
        # Three real attempts happened before the breaker started
        # failing fast.
        assert send.calls == 3
        assert client.breaker.state == "open"

    def test_deadline_exhaustion_raises_typed_error(self):
        client, _clock, _sleeps = make_client(
            retries=50, deadline=1.0, failure_threshold=100
        )
        send = ScriptedSend(
            [ServiceOverloadError("busy", retry_after=0.4)] * 51
        )
        with pytest.raises(DeadlineExceededError, match="deadline") as info:
            client._call(send)
        assert isinstance(info.value.__cause__, ServiceOverloadError)
        # 1.0s budget at 0.4s per sleep: attempts at t=0, .4, .8 then stop.
        assert send.calls == 3

    def test_backoff_envelope_is_exponential_and_capped(self):
        clock = FakeClock()
        sleeps: list[float] = []

        def sleep(seconds: float) -> None:
            sleeps.append(seconds)
            clock.advance(seconds)

        client = ResilientClient(
            "http://test.invalid",
            retries=4,
            backoff=0.1,
            backoff_cap=0.35,
            deadline=None,
            failure_threshold=100,
            rng=MaxRng(),
            clock=clock,
            sleep=sleep,
        )
        send = ScriptedSend([http_error(500)] * 4 + [{"ok": 1}])
        assert client._call(send) == {"ok": 1}
        assert sleeps == [
            pytest.approx(0.1),
            pytest.approx(0.2),
            pytest.approx(0.35),
            pytest.approx(0.35),
        ]

    def test_retries_zero_means_single_attempt(self):
        client, _clock, _sleeps = make_client(retries=0)
        send = ScriptedSend([http_error(500, "only try")])
        with pytest.raises(ReproError, match="only try"):
            client._call(send)
        assert send.calls == 1

    def test_client_request_fault_point(self):
        faults.install_plan(
            FaultPlan(
                [FaultSpec(point="client.request", kind="raise")]
            )
        )
        client, _clock, _sleeps = make_client(retries=0)
        send = ScriptedSend([{"ok": 1}])
        with pytest.raises(Exception, match="client.request"):
            client._call(send)
        assert send.calls == 0  # injected before the wire

    def test_constructor_validation(self):
        with pytest.raises(ValueError, match="retries"):
            ResilientClient("http://x", retries=-1)
        with pytest.raises(ValueError, match="backoff"):
            ResilientClient("http://x", backoff=-0.1)


class TestDeadlineClamp:
    """Satellite fix: per-attempt socket timeout honors the deadline budget."""

    def test_socket_timeout_clamped_to_remaining_budget(self):
        client, clock, _sleeps = make_client(
            retries=10, deadline=5.0, http_timeout=30.0, failure_threshold=100
        )
        send = ScriptedSend([urllib.error.URLError("hang")] * 10)
        original_call = send.__call__

        def slow_call(timeout=None):
            clock.advance(2.0)  # each attempt burns 2s of wall clock
            return original_call(timeout)

        with pytest.raises(DeadlineExceededError, match="deadline"):
            client._call(slow_call)
        # 5s budget at 2s per attempt: timeouts 5 → 3 → 1, then the
        # fourth attempt is refused before sending (budget < 0).
        assert send.calls == 3
        assert send.timeouts == [
            pytest.approx(5.0),
            pytest.approx(3.0),
            pytest.approx(1.0),
        ]

    def test_hung_attempt_cannot_blow_budget_by_http_timeout(self):
        # A scripted slow server exceeds the deadline mid-attempt: the
        # old behavior would send again with the full 30s socket
        # timeout; now the follow-up attempt raises *before* sending.
        client, clock, _sleeps = make_client(
            retries=5, deadline=5.0, http_timeout=30.0, failure_threshold=100
        )
        send = ScriptedSend([urllib.error.URLError("slow")] * 6)
        original_call = send.__call__

        def hung_call(timeout=None):
            clock.advance(6.0)  # hangs past the whole deadline
            return original_call(timeout)

        with pytest.raises(DeadlineExceededError) as info:
            client._call(hung_call)
        assert send.calls == 1
        # The single attempt got the full (clamped) 5s, not 30s.
        assert send.timeouts == [pytest.approx(5.0)]
        assert isinstance(info.value.__cause__, ServiceError)

    def test_no_deadline_passes_http_timeout_through(self):
        client, _clock, _sleeps = make_client(
            retries=0, deadline=None, http_timeout=7.5
        )
        send = ScriptedSend([{"ok": 1}])
        assert client._call(send) == {"ok": 1}
        assert send.timeouts == [pytest.approx(7.5)]

    def test_budget_exactly_exhausted_raises_before_sending(self):
        # The server's retry_after hint lands exactly on the deadline:
        # honoring it would eat the whole budget, so the loop must
        # raise *before* sleeping — no nap it can never wake up from
        # usefully, no second send.
        client, _clock, sleeps = make_client(
            retries=5, deadline=1.0, failure_threshold=100
        )
        send = ScriptedSend([ServiceOverloadError("busy", retry_after=1.0)] * 2)
        with pytest.raises(DeadlineExceededError):
            client._call(send)
        assert send.calls == 1
        assert sleeps == []

    def test_backoff_sleep_clamped_to_remaining_budget(self):
        # A huge server hint cannot be honored, but a plain backoff
        # sleep that merely *overshoots* the budget is clamped so the
        # final attempt still gets its slice of the deadline.
        client, clock, sleeps = make_client(
            retries=1,
            deadline=1.0,
            backoff=10.0,  # unclamped first delay would be 10s
            backoff_cap=10.0,
            rng=MaxRng(),
            failure_threshold=100,
        )
        send = ScriptedSend(
            [http_error(500), http_error(500), http_error(500)]
        )
        start = clock.now
        with pytest.raises(ReproError):
            client._call(send)
        assert send.calls == 2  # the clamped sleep left room to retry
        assert len(sleeps) == 1
        assert sleeps[0] <= 1.0  # never past the deadline
        assert clock.now - start <= 1.0 + 1e-9


class ScriptedHandler(BaseHTTPRequestHandler):
    """Serves a scripted list of (status, body) responses in order.

    A ``bytes`` body is sent verbatim (for malformed-JSON scripts);
    anything else is JSON-encoded.
    """

    script: list[tuple[int, object]] = []
    lock = threading.Lock()

    def _reply(self) -> None:
        with self.lock:
            status, body = (
                self.script.pop(0) if self.script else (200, {"ok": True})
            )
        if isinstance(body, bytes):
            payload = body
        else:
            payload = json.dumps(body).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def do_GET(self) -> None:  # noqa: N802 (stdlib handler API)
        self._reply()

    def do_POST(self) -> None:  # noqa: N802 (stdlib handler API)
        if self.headers.get("Content-Length"):
            self.rfile.read(int(self.headers["Content-Length"]))
        self._reply()

    def log_message(self, *args) -> None:
        pass


@pytest.fixture
def scripted_server():
    """An in-thread HTTP server replaying ScriptedHandler.script."""
    server = ThreadingHTTPServer(("127.0.0.1", 0), ScriptedHandler)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield f"http://127.0.0.1:{server.server_address[1]}"
    finally:
        ScriptedHandler.script = []
        server.shutdown()
        server.server_close()
        thread.join(5)


class TestClientOverHTTP:
    def test_429_then_200_within_deadline(self, scripted_server):
        ScriptedHandler.script = [
            (429, {"error": "overloaded", "retry_after": 0.05}),
            (429, {"error": "overloaded", "retry_after": "garbage"}),
            (200, {"status": "ok"}),
        ]
        client = ResilientClient(
            scripted_server, retries=5, backoff=0.0, deadline=10.0
        )
        assert client.healthz() == {"status": "ok"}

    def test_persistent_5xx_opens_breaker(self, scripted_server):
        ScriptedHandler.script = [(503, {"error": "down"})] * 10
        client = ResilientClient(
            scripted_server,
            retries=8,
            backoff=0.0,
            deadline=10.0,
            failure_threshold=3,
            breaker_reset=60.0,
        )
        with pytest.raises(CircuitOpenError):
            client.healthz()
        assert client.breaker.state == "open"
        # Subsequent calls fail fast without touching the network.
        with pytest.raises(CircuitOpenError):
            client.healthz()

    def test_unreachable_server_raises_service_error(self):
        client = ResilientClient(
            "http://127.0.0.1:9", retries=1, backoff=0.0, deadline=5.0
        )
        with pytest.raises(ServiceError, match="cannot reach"):
            client.healthz()

    def test_garbage_200_body_is_retried_then_succeeds(self, scripted_server):
        # Satellite fix: a 200 with a non-JSON body must be classified
        # as a retryable transport fault, not leak json.JSONDecodeError.
        ScriptedHandler.script = [
            (200, b"<<<truncated garbage"),
            (200, {"status": "ok"}),
        ]
        client = ResilientClient(
            scripted_server, retries=3, backoff=0.0, deadline=10.0
        )
        assert client.healthz() == {"status": "ok"}

    def test_persistent_garbage_body_surfaces_typed(self, scripted_server):
        ScriptedHandler.script = [(200, b"not json at all")] * 4
        client = ResilientClient(
            scripted_server,
            retries=2,
            backoff=0.0,
            deadline=10.0,
            failure_threshold=100,
        )
        with pytest.raises(ServiceError, match="malformed JSON") as info:
            client.healthz()
        assert getattr(info.value, "status", None) == 502

    def test_non_dict_200_body_surfaces_typed(self, scripted_server):
        ScriptedHandler.script = [(200, [1, 2, 3])] * 2
        client = ResilientClient(
            scripted_server,
            retries=1,
            backoff=0.0,
            deadline=10.0,
            failure_threshold=100,
        )
        with pytest.raises(ServiceError, match="JSON object") as info:
            client.healthz()
        assert getattr(info.value, "status", None) == 502


class TestResultCacheEpochScan:
    """Satellite fix: one stale-entry scan per epoch advance, not per put."""

    def test_single_scan_per_epoch_burst(self):
        from repro.service import ResultCache

        cache = ResultCache(capacity=64)
        for i in range(10):
            cache.put((f"q{i}", "p", 0), (i,))
        assert cache.invalidations == 0
        # First insert at the new epoch purges every stale entry...
        cache.put(("q0", "p", 1), (0,))
        assert cache.invalidations == 10
        # ...and the rest of the same-epoch burst never rescans.
        for i in range(1, 10):
            cache.put((f"q{i}", "p", 1), (i,))
        assert cache.invalidations == 10
        assert len(cache) == 10

    def test_stale_epoch_straggler_purged_on_next_advance(self):
        from repro.service import ResultCache

        cache = ResultCache(capacity=64)
        cache.put(("a", "p", 1), (1,))
        # A straggler insert at an older epoch triggers no scan...
        cache.put(("late", "p", 0), (0,))
        assert cache.invalidations == 0
        assert len(cache) == 2
        # ...but the next epoch advance sweeps both dead entries.
        cache.put(("b", "p", 2), (2,))
        assert cache.invalidations == 2
        assert len(cache) == 1

    def test_len_is_lock_safe_and_counts_entries(self):
        from repro.service import ResultCache

        cache = ResultCache(capacity=4)
        assert len(cache) == 0
        for i in range(6):
            cache.put((f"q{i}", "p", 0), (i,))
        assert len(cache) == 4  # LRU evicted down to capacity
        assert cache.evictions == 2


class TestServiceFaultPoint:
    def test_injected_service_fault_surfaces_as_500_and_client_retries(self):
        data = DocumentCollection()
        data.add_tokens([f"w{i % 7}" for i in range(40)])
        searcher = PKWiseSearcher(data, SearchParams(w=8, tau=2, k_max=2))
        faults.install_plan(
            FaultPlan(
                [
                    FaultSpec(
                        point="service.request", kind="raise", max_triggers=1
                    )
                ]
            )
        )
        with SearchService(searcher, data, max_workers=2) as service:
            httpd = serve_http(service, port=0)
            thread = threading.Thread(target=httpd.serve_forever, daemon=True)
            thread.start()
            try:
                client = ResilientClient(
                    httpd.url,
                    retries=3,
                    backoff=0.0,
                    deadline=10.0,
                    failure_threshold=10,
                )
                # First attempt hits the injected fault (HTTP 500), the
                # retry succeeds once the single trigger is spent.
                reply = client.search(token_ids=list(data[0].tokens[:10]))
                assert "pairs" in reply
            finally:
                httpd.shutdown()
                httpd.server_close()
