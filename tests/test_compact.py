"""Tests for the compact array-backed index and the format-v3 snapshots.

Covers the freeze (``PKWiseSearcher.compacted``) parity contract —
serial, fork, spawn, and behind a :class:`~repro.SearchService` — the
hash-collision path collisions can only *add* candidates, the frozen
mutation guards, the mmap-able v3 envelope (roundtrip, digests,
truncation, tombstones), and the :class:`~repro.index.PackedRankDocs`
sequence semantics.
"""

from __future__ import annotations

import multiprocessing

import numpy as np
import pytest

from repro import (
    Index,
    PersistenceError,
    PKWiseSearcher,
    SearchParams,
    SearchService,
    save_searcher,
)
from repro.errors import IndexStateError
from repro.eval import run_searcher
from repro.index import CompactIntervalIndex, IntervalIndex, PackedRankDocs, ProbeHit
from repro.persistence import is_v3_file, load_bundle, load_searcher

from .conftest import pairs_as_set

HAVE_FORK = "fork" in multiprocessing.get_all_start_methods()


@pytest.fixture
def built(small_corpus):
    params = SearchParams(w=10, tau=2, k_max=3)
    return small_corpus, PKWiseSearcher(small_corpus, params)


@pytest.fixture
def queries(small_corpus):
    # Re-encode document slices as queries (includes the planted overlap).
    return [
        small_corpus.encode_query_tokens(
            [
                small_corpus.vocabulary.decode([t])[0]
                for t in small_corpus[d].tokens[:40]
            ]
        )
        for d in (0, 3, 5)
    ]


class TestCompactParity:
    def test_serial_pairs_identical(self, built, queries):
        data, searcher = built
        frozen = searcher.compacted()
        assert frozen.frozen and not searcher.frozen
        assert isinstance(frozen.index, CompactIntervalIndex)
        for query in queries:
            assert pairs_as_set(frozen.search(query)) == pairs_as_set(
                searcher.search(query)
            )

    def test_compacted_of_frozen_is_self(self, built):
        _data, searcher = built
        frozen = searcher.compacted()
        assert frozen.compacted() is frozen

    def test_probe_contract_matches(self, built):
        _data, searcher = built
        frozen = searcher.compacted()
        assert frozen.index.num_postings == searcher.index.size_in_entries()
        hits = 0
        for key in searcher.index._postings:
            dict_hits = searcher.index.probe(key)
            compact_hits = frozen.index.probe(key)
            assert sorted(compact_hits) == sorted(dict_hits)
            hits += len(compact_hits)
        assert hits > 0

    @pytest.mark.skipif(not HAVE_FORK, reason="fork start method unavailable")
    def test_parity_under_fork(self, built, queries):
        _data, searcher = built
        serial = run_searcher(searcher.compacted(), queries)
        forked = run_searcher(
            searcher.compacted(), queries, jobs=2, start_method="fork"
        )
        assert forked.results_by_query == serial.results_by_query

    def test_parity_under_spawn(self, built, queries):
        # The spawn transport writes a compact v3 snapshot and each
        # worker memory-maps it; results must match the serial run.
        _data, searcher = built
        serial = run_searcher(searcher, queries)
        spawned = run_searcher(
            searcher.compacted(), queries, jobs=2, start_method="spawn"
        )
        assert spawned.results_by_query == serial.results_by_query

    def test_parity_behind_service(self, built, queries):
        data, searcher = built
        expected = [pairs_as_set(searcher.search(query)) for query in queries]
        with SearchService(searcher.compacted(), data, max_workers=2) as service:
            got = [set(map(tuple, service.search(q).pairs)) for q in queries]
        assert got == expected


class TestHashedCollisions:
    """Colliding keys merge postings runs: extra candidates, same pairs."""

    def _collide_all_hashes(self, monkeypatch):
        import numpy as np

        from repro.index import compact as compact_module
        from repro.index import interval_index as interval_module

        # Both the scalar and the vectorized hasher must collide, or
        # the batched probe path would "hash" differently from freezing.
        monkeypatch.setattr(interval_module, "signature_hash", lambda sig: 7)
        monkeypatch.setattr(compact_module, "signature_hash", lambda sig: 7)
        monkeypatch.setattr(
            compact_module,
            "signature_hashes",
            lambda sigs: np.full(len(sigs), 7, dtype=np.uint64),
        )

    def test_dict_hashed_collision_pairs_survive(
        self, built, queries, monkeypatch
    ):
        data, baseline = built
        expected = [pairs_as_set(baseline.search(q)) for q in queries]
        base_candidates = sum(
            baseline.search(q).stats.candidate_windows for q in queries
        )
        self._collide_all_hashes(monkeypatch)
        collided = PKWiseSearcher(data, baseline.params, hashed=True)
        assert len(collided.index._postings) == 1  # every signature collided
        got = [pairs_as_set(collided.search(q)) for q in queries]
        assert got == expected
        # Merged postings can only add candidates; verification removes
        # the extras so the final pairs above are unchanged.
        collided_candidates = sum(
            collided.search(q).stats.candidate_windows for q in queries
        )
        assert collided_candidates >= base_candidates

    def test_compact_collision_pairs_survive(self, built, queries, monkeypatch):
        _data, baseline = built
        expected = [pairs_as_set(baseline.search(q)) for q in queries]
        self._collide_all_hashes(monkeypatch)
        frozen = baseline.compacted()
        assert frozen.index.num_signatures == 1
        assert frozen.index.num_postings == baseline.index.size_in_entries()
        got = [pairs_as_set(frozen.search(q)) for q in queries]
        assert got == expected

    def test_two_keys_share_a_bucket(self, monkeypatch):
        # Minimal shape of the collision property: two distinct tuple
        # keys, one bucket, both postings runs preserved.
        from repro.index import compact as compact_module
        from repro.partition import equi_width_scheme

        monkeypatch.setattr(compact_module, "signature_hash", lambda sig: 42)
        scheme = equi_width_scheme(8, 2)
        index = IntervalIndex(4, 1, scheme)
        index._postings[(1, 2)] = [ProbeHit(0, 0, 3)]
        index._postings[(3, 4)] = [ProbeHit(1, 5, 9)]
        frozen = CompactIntervalIndex.from_index(index)
        assert frozen.num_signatures == 1
        assert sorted(frozen.probe((1, 2))) == [ProbeHit(0, 0, 3), ProbeHit(1, 5, 9)]


class TestFrozenGuards:
    def test_index_mutation_raises(self, built):
        _data, searcher = built
        frozen = searcher.compacted()
        with pytest.raises(IndexStateError, match="frozen"):
            frozen.index.add_document(99, [1, 2, 3])
        with pytest.raises(IndexStateError, match="frozen"):
            frozen.index.merge(searcher.index)

    def test_searcher_add_document_raises(self, built, small_corpus):
        # The frozen engine itself stays immutable; the supported
        # mutation route is Index.add, which upgrades to the LSM write
        # path instead of touching the compact arrays.
        _data, searcher = built
        frozen = searcher.compacted()
        with pytest.raises(IndexStateError, match="frozen"):
            frozen._add_document(small_corpus[0])

    def test_remove_document_still_works(self, built, queries):
        _data, searcher = built
        frozen = searcher.compacted()
        before = frozen.search(queries[1])
        assert any(pair.doc_id == 0 for pair in before.pairs)
        frozen._remove_document(0)
        after = frozen.search(queries[1])
        assert not any(pair.doc_id == 0 for pair in after.pairs)

    def test_service_add_upgrades_frozen_to_live(self, built, small_corpus):
        # Mutating a service over a frozen compact searcher used to be
        # a hard error; it now upgrades to the LSM write path — the
        # compact index becomes the frozen base segment and the add
        # lands in a memtable, immediately searchable.
        data, searcher = built
        with SearchService(searcher.compacted(), data, max_workers=1) as service:
            new_id = service.add_document(small_corpus[0])
            assert new_id == len(small_corpus) - 1
            result = service.search(small_corpus[0])
            assert any(pair.doc_id == new_id for pair in result.pairs)

    def test_column_shape_validation(self):
        with pytest.raises(IndexStateError, match="offsets"):
            CompactIntervalIndex(
                4,
                1,
                None,
                keys=np.zeros(2, dtype=np.uint64),
                offsets=np.zeros(2, dtype=np.int64),
                docs=np.zeros(0, dtype=np.int32),
                us=np.zeros(0, dtype=np.int32),
                vs=np.zeros(0, dtype=np.int32),
            )


class TestV3Snapshots:
    def test_compact_save_is_v3_and_loads_identically(self, built, queries, tmp_path):
        data, searcher = built
        path = tmp_path / "index.idx"
        save_searcher(searcher, path, data=data, compact=True)
        assert is_v3_file(path)
        for mmap in (False, True):
            loaded = load_searcher(path, mmap=mmap)
            assert loaded.frozen
            for query in queries:
                assert pairs_as_set(loaded.search(query)) == pairs_as_set(
                    searcher.search(query)
                )

    def test_plain_save_stays_v2(self, built, tmp_path):
        _data, searcher = built
        path = tmp_path / "index.pkl"
        save_searcher(searcher, path)
        assert not is_v3_file(path)

    def test_mmap_on_v2_is_typed_error(self, built, tmp_path):
        _data, searcher = built
        path = tmp_path / "index.pkl"
        save_searcher(searcher, path)
        with pytest.raises(PersistenceError, match="format-v3"):
            load_searcher(path, mmap=True)

    def test_bundle_data_roundtrips(self, built, tmp_path):
        data, searcher = built
        path = tmp_path / "index.idx"
        save_searcher(searcher, path, data=data, compact=True)
        bundle = load_bundle(path, mmap=True)
        assert len(bundle.data) == len(data)
        assert bundle.data[0].tokens == data[0].tokens

    def test_tombstones_survive_roundtrip(self, built, queries, tmp_path):
        _data, searcher = built
        searcher._remove_document(0)
        epoch_before = searcher.index_epoch
        path = tmp_path / "index.idx"
        save_searcher(searcher, path, compact=True)
        loaded = load_searcher(path, mmap=True)
        assert loaded.removed_documents == frozenset({0})
        assert loaded.index_epoch == epoch_before
        assert not any(
            pair.doc_id == 0 for pair in loaded.search(queries[1]).pairs
        )

    def test_flipped_array_byte_is_typed_error(self, built, tmp_path):
        _data, searcher = built
        path = tmp_path / "index.idx"
        save_searcher(searcher, path, compact=True)
        raw = bytearray(path.read_bytes())
        raw[-8] ^= 0xFF  # inside the last array section
        path.write_bytes(bytes(raw))
        with pytest.raises(PersistenceError):
            load_searcher(path, fallback=False)

    def test_truncated_file_is_typed_error(self, built, tmp_path):
        _data, searcher = built
        path = tmp_path / "index.idx"
        save_searcher(searcher, path, compact=True)
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) // 2])
        with pytest.raises(PersistenceError):
            load_searcher(path, fallback=False)
        for mode in (False, True):
            path.write_bytes(raw[:20])  # not even a whole TOC length
            with pytest.raises(PersistenceError):
                load_searcher(path, fallback=False, mmap=mode)

    def test_compact_requires_pkwise(self, small_corpus, tmp_path):
        from repro.core import WeightedPKWiseSearcher

        weighted = WeightedPKWiseSearcher(
            small_corpus, w=10, theta_weight=8.0, weight_of_token=lambda _t: 1.0
        )
        with pytest.raises(PersistenceError, match="compact"):
            save_searcher(weighted, tmp_path / "w.idx", compact=True)

    def test_mmap_load_shares_file_pages(self, built, tmp_path):
        _data, searcher = built
        path = tmp_path / "index.idx"
        save_searcher(searcher, path, compact=True)
        loaded = load_searcher(path, mmap=True)
        keys = loaded.index._keys
        # The column is a view over the mapped buffer, not a copy.
        assert not keys.flags["OWNDATA"]

    def test_index_facade_open_mmap(self, built, queries, tmp_path):
        data, searcher = built
        path = tmp_path / "index.idx"
        Index(searcher, data).save(path, compact=True)
        with Index.open(path, mmap=True) as index:
            assert index.frozen
            assert pairs_as_set(index.search(queries[0])) == pairs_as_set(
                searcher.search(queries[0])
            )


class TestPackedRankDocs:
    def test_roundtrip_matches_lists(self, built):
        _data, searcher = built
        packed = PackedRankDocs.from_lists(searcher.rank_docs)
        assert len(packed) == len(searcher.rank_docs)
        for doc_id, ranks in enumerate(searcher.rank_docs):
            assert packed[doc_id] == list(ranks)

    def test_slice_and_negative_index(self):
        packed = PackedRankDocs.from_lists([[1, 2], [3], [4, 5, 6]])
        assert packed[-1] == [4, 5, 6]
        assert packed[1:] == [[3], [4, 5, 6]]
        with pytest.raises(IndexError):
            packed[3]

    def test_cache_eviction_keeps_answers_right(self):
        lists = [[i, i + 1] for i in range(40)]  # > cache size
        packed = PackedRankDocs.from_lists(lists)
        for _round in range(2):
            for i, expected in enumerate(lists):
                assert packed[i] == expected

    def test_arrays_roundtrip(self):
        packed = PackedRankDocs.from_lists([[9, 8], [], [7]])
        clone = PackedRankDocs.from_arrays(packed.to_arrays())
        assert [clone[i] for i in range(3)] == [[9, 8], [], [7]]

    def test_empty_offsets_rejected(self):
        with pytest.raises(IndexStateError):
            PackedRankDocs(np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64))

    def test_wide_values_fall_back_to_int64(self):
        packed = PackedRankDocs.from_lists([[2**40]])
        assert packed[0] == [2**40]


class TestTypedResults:
    def test_probe_hits_have_named_fields(self, built):
        _data, searcher = built
        frozen = searcher.compacted()
        key = next(iter(searcher.index._postings))
        for index in (searcher.index, frozen.index):
            hit = index.probe(key)[0]
            assert isinstance(hit, ProbeHit)
            assert hit.doc_id == hit[0] and hit.u == hit[1] and hit.v == hit[2]
            doc_id, u, v = hit  # tuple unpack keeps working
            assert (doc_id, u, v) == tuple(hit)

    def test_match_pairs_have_named_fields(self, built, queries):
        from repro import MatchPair

        _data, searcher = built
        for engine in (searcher, searcher.compacted()):
            pair = engine.search(queries[1]).pairs[0]
            assert isinstance(pair, MatchPair)
            assert pair.doc_id == pair[0]
            assert pair.overlap == pair[3]
