"""Tests for the all-pairs self-join."""

from __future__ import annotations

import random

from repro import (
    DocumentCollection,
    SearchParams,
    local_similarity_self_join,
)

from .conftest import brute_force_pairs


def make_corpus_with_copy():
    rng = random.Random(5)
    data = DocumentCollection()
    docs = [
        [f"t{rng.randrange(200)}" for _ in range(60)] for _ in range(4)
    ]
    docs[2][10:40] = docs[0][5:35]  # doc2 copies a segment of doc0
    for tokens in docs:
        data.add_tokens(tokens)
    return data


class TestSelfJoin:
    def test_finds_cross_document_copy(self):
        data = make_corpus_with_copy()
        params = SearchParams(w=10, tau=2, k_max=2)
        pairs = local_similarity_self_join(data, params)
        cross = [p for p in pairs if p.left_doc != p.right_doc]
        assert any(
            {p.left_doc, p.right_doc} == {0, 2} for p in cross
        )

    def test_no_identity_pairs(self):
        data = make_corpus_with_copy()
        params = SearchParams(w=10, tau=2, k_max=2)
        pairs = local_similarity_self_join(data, params)
        for p in pairs:
            assert (p.left_doc, p.left_start) != (p.right_doc, p.right_start)

    def test_canonical_orientation_unique(self):
        data = make_corpus_with_copy()
        params = SearchParams(w=10, tau=2, k_max=2)
        pairs = local_similarity_self_join(data, params)
        assert len(pairs) == len(set(pairs))
        for p in pairs:
            assert (p.left_doc, p.left_start) < (p.right_doc, p.right_start)

    def test_matches_bruteforce_reference(self):
        data = make_corpus_with_copy()
        w, tau = 10, 2
        params = SearchParams(w=w, tau=tau, k_max=2)
        got = {
            (p.left_doc, p.left_start, p.right_doc, p.right_start)
            for p in local_similarity_self_join(data, params)
        }
        expected = set()
        for document in data:
            for doc_id, data_start, query_start, _overlap in brute_force_pairs(
                data, document, w, tau
            ):
                left = (doc_id, data_start)
                right = (document.doc_id, query_start)
                if left < right:
                    expected.add((*left, *right))
        assert got == expected

    def test_exclude_same_document_within(self):
        data = DocumentCollection()
        data.add_tokens(["a"] * 30)  # every window identical to neighbours
        params = SearchParams(w=5, tau=1, k_max=1)
        all_pairs = local_similarity_self_join(data, params)
        assert all_pairs  # overlapping self-windows match
        filtered = local_similarity_self_join(
            data, params, exclude_same_document_within=len(data[0])
        )
        assert filtered == []

    def test_overlap_values_correct(self):
        data = make_corpus_with_copy()
        params = SearchParams(w=10, tau=2, k_max=2)
        for p in local_similarity_self_join(data, params):
            left_window = data[p.left_doc].tokens[p.left_start : p.left_start + 10]
            right_window = data[p.right_doc].tokens[
                p.right_start : p.right_start + 10
            ]
            from repro.windows import window_overlap

            assert window_overlap(left_window, right_window) == p.overlap
