"""Tests for CSV/JSON export of runs and quality reports."""

from __future__ import annotations

import csv
import json

from repro import PKWiseSearcher, SearchParams
from repro.core.base import MatchPair
from repro.corpus.plagiarism import GroundTruthPair, ObfuscationLevel
from repro.eval import (
    aggregate_to_row,
    evaluate_quality,
    quality_to_row,
    run_searcher,
    write_csv,
    write_json,
)


def make_run(small_corpus):
    params = SearchParams(w=10, tau=2, k_max=2)
    searcher = PKWiseSearcher(small_corpus, params)
    return run_searcher(searcher, [small_corpus[0]])


class TestRowFlattening:
    def test_aggregate_row_fields(self, small_corpus):
        run = make_run(small_corpus)
        row = aggregate_to_row(run, w=10, tau=2)
        assert row["w"] == 10 and row["tau"] == 2  # extras first-class
        assert row["algorithm"] == "pkwise"
        assert row["num_results"] == run.num_results
        assert row["avg_query_seconds"] > 0

    def test_quality_row_fields(self):
        truth = GroundTruthPair(0, (10, 29), 0, (5, 24), ObfuscationLevel.LOW)
        report = evaluate_quality({0: [MatchPair(0, 15, 10, 9)]}, [truth], w=10)
        row = quality_to_row(report, setting="w25")
        assert row["setting"] == "w25"
        assert row["recall"] == 1.0
        assert row["recall_low"] == 1.0


class TestWriters:
    def test_write_csv_roundtrip(self, tmp_path, small_corpus):
        run = make_run(small_corpus)
        rows = [aggregate_to_row(run, w=10), aggregate_to_row(run, w=25)]
        path = tmp_path / "runs.csv"
        assert write_csv(path, rows) == 2
        with open(path) as handle:
            read_back = list(csv.DictReader(handle))
        assert len(read_back) == 2
        assert read_back[0]["algorithm"] == "pkwise"
        assert read_back[1]["w"] == "25"

    def test_write_csv_union_header(self, tmp_path):
        rows = [{"a": 1}, {"a": 2, "b": 3}]
        path = tmp_path / "union.csv"
        write_csv(path, rows)
        with open(path) as handle:
            read_back = list(csv.DictReader(handle))
        assert read_back[0]["b"] == ""  # missing cell empty
        assert read_back[1]["b"] == "3"

    def test_write_json(self, tmp_path):
        path = tmp_path / "rows.json"
        assert write_json(path, [{"x": 1}, {"x": 2}]) == 2
        assert json.loads(path.read_text()) == [{"x": 1}, {"x": 2}]

    def test_empty_rows(self, tmp_path):
        assert write_csv(tmp_path / "empty.csv", []) == 0
        assert write_json(tmp_path / "empty.json", []) == 0
