"""Tests for the batch-first probe path (``probe_many``/``ProbeBatch``).

Covers the vectorized FNV hasher against the scalar reference, the
dict/compact ``probe_many`` parity contract (hit-for-hit, including
forced 64-bit collisions and memo steady state), the flat-column batch
protocol itself (``sig_counts`` slicing, empty and all-OOV batches,
tombstone filtering), and the searcher-level guarantees the batched
slide loop must preserve: pair parity with tombstones and a populated,
reconciling ``SearchStats`` phase breakdown.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import PKWiseSearcher, SearchParams
from repro.index import CompactIntervalIndex, ProbeBatch
from repro.index import compact as compact_module
from repro.signatures.generate import signature_hash, signature_hashes

from .conftest import pairs_as_set


@pytest.fixture
def built(small_corpus):
    params = SearchParams(w=10, tau=2, k_max=3)
    return small_corpus, PKWiseSearcher(small_corpus, params)


@pytest.fixture
def queries(small_corpus):
    return [
        small_corpus.encode_query_tokens(
            [
                small_corpus.vocabulary.decode([t])[0]
                for t in small_corpus[d].tokens[:40]
            ]
        )
        for d in (0, 3, 5)
    ]


class TestSignatureHashes:
    def test_matches_scalar_reference(self):
        signatures = [
            (),
            (0,),
            (1, 2, 3),
            (2**40, 2**41),
            (-1,),          # OOV ranks hash via 64-bit two's complement
            (7, -3, 12),
            tuple(range(9)),
        ]
        vectorized = signature_hashes(signatures)
        assert vectorized.dtype == np.uint64
        assert vectorized.tolist() == [signature_hash(s) for s in signatures]

    def test_empty_input(self):
        assert len(signature_hashes([])) == 0

    def test_mixed_lengths_keep_positions(self):
        # Length-grouped hashing must scatter results back in order.
        signatures = [(1,), (2, 3), (4,), (5, 6), (7, 8, 9)]
        assert signature_hashes(signatures).tolist() == [
            signature_hash(s) for s in signatures
        ]


def batch_rows(batch: ProbeBatch) -> list[tuple]:
    return [
        (doc, u, v, sign)
        for doc, u, v, sign in zip(
            batch.docs.tolist(), batch.us.tolist(),
            batch.vs.tolist(), batch.signs.tolist(),
        )
    ]


class TestProbeManyParity:
    def _indexes(self, searcher):
        return searcher.index, searcher.compacted().index

    def test_dict_and_compact_agree(self, built):
        _data, searcher = built
        dict_index, compact_index = self._indexes(searcher)
        keys = list(dict_index._postings)
        assert len(keys) > CompactIntervalIndex._VECTOR_MIN
        oov = (10**9, 10**9 + 1)
        batch_keys = keys + [oov]
        signs = [1 if i % 3 else -1 for i in range(len(batch_keys))]
        a = dict_index.probe_many(batch_keys, signs)
        b = compact_index.probe_many(batch_keys, signs)
        assert a.probed == b.probed == len(batch_keys)
        assert a.entries == b.entries > 0
        assert batch_rows(a) == batch_rows(b)
        assert a.sig_counts.tolist() == b.sig_counts.tolist()
        # Steady state: the memo is now warm; a repeat probe must be
        # identical (this exercises the all-hits small-dict-gets path).
        again = compact_index.probe_many(batch_keys, signs)
        assert batch_rows(again) == batch_rows(b)

    def test_small_batches_agree(self, built):
        _data, searcher = built
        dict_index, compact_index = self._indexes(searcher)
        keys = list(dict_index._postings)[:5]  # below _VECTOR_MIN
        a = dict_index.probe_many(keys)
        b = compact_index.probe_many(keys)
        assert batch_rows(a) == batch_rows(b)
        assert a.signs.tolist() == [1] * a.entries  # default sign is +1

    def test_sig_counts_slice_matches_scalar_probe(self, built):
        _data, searcher = built
        dict_index, compact_index = self._indexes(searcher)
        keys = list(dict_index._postings)[:40]
        batch = compact_index.probe_many(keys)
        bounds = batch.entry_bounds().tolist()
        assert bounds[-1] == batch.entries
        for i, key in enumerate(keys):
            run = [
                (doc, u, v)
                for doc, u, v in zip(
                    batch.docs[bounds[i]:bounds[i + 1]].tolist(),
                    batch.us[bounds[i]:bounds[i + 1]].tolist(),
                    batch.vs[bounds[i]:bounds[i + 1]].tolist(),
                )
            ]
            assert run == [tuple(hit) for hit in compact_index.probe(key)]

    def test_forced_collision_merges_runs(self, built, monkeypatch):
        _data, searcher = built
        monkeypatch.setattr(compact_module, "signature_hash", lambda sig: 7)
        monkeypatch.setattr(
            compact_module,
            "signature_hashes",
            lambda sigs: np.full(len(sigs), 7, dtype=np.uint64),
        )
        collided = CompactIntervalIndex.from_index(searcher.index)
        assert collided.num_signatures == 1
        keys = list(searcher.index._postings)[:30]
        batch = collided.probe_many(keys)
        # Every signature now resolves to the single merged run: only
        # ever *more* candidates than the un-collided index returns.
        assert set(batch.sig_counts.tolist()) == {collided.num_postings}
        honest = searcher.compacted().index.probe_many(keys)
        assert batch.entries >= honest.entries


class TestProbeBatchEdges:
    def test_empty_batch(self, built):
        _data, searcher = built
        for index in (searcher.index, searcher.compacted().index):
            batch = index.probe_many(())
            assert batch.probed == 0 and batch.entries == 0
            assert len(batch) == 0
            assert batch.entry_bounds().tolist() == [0]

    def test_all_oov_batch(self, built):
        _data, searcher = built
        oov = [(10**8 + i, 10**8 + i + 1) for i in range(40)]
        for index in (searcher.index, searcher.compacted().index):
            batch = index.probe_many(oov)
            assert batch.probed == len(oov)
            assert batch.entries == 0
            assert batch.sig_counts.tolist() == [0] * len(oov)

    def test_column_length_validation(self):
        column = np.zeros(3, dtype=np.int64)
        with pytest.raises(ValueError, match="columns differ"):
            ProbeBatch(column, column[:2], column, column.astype(np.int8),
                       np.asarray([3]), 1)
        with pytest.raises(ValueError, match="sig_counts"):
            ProbeBatch(column, column, column, column.astype(np.int8),
                       np.asarray([3]), 2)

    def test_without_docs_filters_and_recounts(self):
        batch = ProbeBatch.from_rows(
            docs=[0, 1, 1, 2],
            us=[0, 5, 9, 3],
            vs=[4, 8, 12, 6],
            signs=[1, 1, -1, 1],
            sig_counts=[2, 1, 0, 1],
        )
        filtered = batch.without_docs({1})
        assert filtered.docs.tolist() == [0, 2]
        assert filtered.signs.tolist() == [1, 1]
        assert filtered.probed == batch.probed
        # Per-signature counts re-derived so slicing keeps working:
        # signature 0 loses its second hit (doc 1), signature 1's only
        # hit (doc 1, the closing -1) disappears too.
        assert filtered.sig_counts.tolist() == [1, 0, 0, 1]

    def test_without_docs_no_match_returns_self(self):
        batch = ProbeBatch.from_rows([0], [1], [2], [1], [1])
        assert batch.without_docs({99}) is batch
        assert batch.without_docs(set()) is batch


class TestSearcherLevelBatching:
    def test_tombstone_parity_dict_vs_compact(self, built, queries):
        data, searcher = built
        frozen = searcher.compacted()
        searcher._remove_document(3)
        frozen._remove_document(3)
        for query in queries:
            a = pairs_as_set(searcher.search(query))
            b = pairs_as_set(frozen.search(query))
            assert a == b
            assert not any(pair[0] == 3 for pair in a)

    def test_stats_populated_and_reconcile(self, built, queries):
        _data, searcher = built
        result = searcher.search(queries[0])
        stats = result.stats
        assert stats.probe_batches >= 1
        assert stats.probe_signatures >= stats.probe_batches
        assert stats.postings_entries > 0
        assert stats.signature_time > 0
        assert stats.candidate_time > 0
        assert stats.verify_time > 0
        # Boundary timing: the three phases are the whole accounting.
        assert stats.total_time == pytest.approx(
            stats.signature_time + stats.candidate_time + stats.verify_time
        )
        # The registry roundtrip must carry the new counters.
        back = type(stats).from_snapshot(stats.snapshot())
        assert back.probe_batches == stats.probe_batches
        assert back.probe_signatures == stats.probe_signatures

    def test_chunk_boundary_parity(self, built, queries, monkeypatch):
        # Results must not depend on the prefetch chunk size.
        _data, searcher = built
        expected = [pairs_as_set(searcher.search(q)) for q in queries]
        for chunk in (1, 3, 1000):
            monkeypatch.setattr(PKWiseSearcher, "_PROBE_CHUNK_EVENTS", chunk)
            got = [pairs_as_set(searcher.search(q)) for q in queries]
            assert got == expected, f"pairs drifted at chunk size {chunk}"
