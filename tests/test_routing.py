"""Tests for the fingerprint routing tier (:mod:`repro.routing`).

The contract under test:

* **Conservativeness** — ``exact`` mode never changes results: over
  random corpora and a ``(w, tau)`` grid, a routed searcher returns
  pair-for-pair the results of the same searcher with routing off —
  serially, under fork and spawn workers, through a 3-shard router,
  and across any LSM interleaving of adds/removes/flushes/compactions.
* **API surface** — :class:`~repro.RoutingPolicy` is a frozen kw-only
  dataclass that normalizes from strings/dicts, rides on
  :class:`~repro.SearchParams`, and round-trips through format-v3
  snapshots; asking a fingerprint-less snapshot to route raises the
  typed :class:`~repro.RoutingUnavailableError` (eagerly at
  ``Index.open``, lazily at query time).
* **Observability** — the ``routing.*`` counters report checked and
  pruned documents identically across start methods.
"""

from __future__ import annotations

import dataclasses
import json
import multiprocessing
import random
import threading
import urllib.request

import numpy as np
import pytest

from repro import (
    ConfigurationError,
    DocumentCollection,
    Index,
    IngestStore,
    PKWiseSearcher,
    RoutingPolicy,
    RoutingUnavailableError,
    SearchParams,
    SearchService,
)
from repro.errors import IndexStateError
from repro.eval.harness import canonical_pair_order, run_searcher
from repro.routing import (
    FINGERPRINT_BITS,
    FingerprintTier,
    exact_hamming_budget,
)
from repro.service import ShardRouter, serve_http

from .conftest import pairs_as_set

HAVE_FORK = "fork" in multiprocessing.get_all_start_methods()

PARAM_GRID = [
    SearchParams(w=8, tau=1, k_max=2),
    SearchParams(w=8, tau=2, k_max=2),
    SearchParams(w=12, tau=3, k_max=2),
]


def make_corpus(seed, *, docs=6, length=80, vocab=40, planted=True):
    """Random corpus; optionally plant a near-duplicate cross-doc segment."""
    rng = random.Random(seed)
    data = DocumentCollection()
    token_docs = [
        [f"t{rng.randrange(vocab)}" for _ in range(length)] for _ in range(docs)
    ]
    if planted and docs >= 4:
        segment = token_docs[0][10:40]
        segment[5] = "t-planted"
        token_docs[3][20:50] = segment
    for tokens in token_docs:
        data.add_tokens(tokens)
    return data, rng


def make_queries(data, rng, *, count=4, vocab=40, length=30):
    """Mix of planted (from doc 0) and random queries."""
    queries = []
    for i in range(count):
        if i % 2 == 0 and len(data) > 0:
            tokens = data.vocabulary.decode(data[0].tokens[8 : 8 + length])
        else:
            tokens = [f"t{rng.randrange(vocab)}" for _ in range(length)]
        queries.append(data.encode_query_tokens(tokens, name=f"q{i}"))
    return queries


def routed_pair(data, params):
    """(off, exact) searcher pair over the same collection."""
    off = PKWiseSearcher(data, params.with_routing("off"))
    routed = PKWiseSearcher(data, params.with_routing("exact"))
    return off, routed


# ----------------------------------------------------------------------
class TestRoutingPolicy:
    def test_defaults_and_enabled(self):
        policy = RoutingPolicy()
        assert policy.mode == "off"
        assert not policy.enabled
        assert RoutingPolicy(mode="exact").enabled
        assert RoutingPolicy(mode="approx").enabled

    def test_frozen_and_kwonly(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            RoutingPolicy().mode = "exact"  # type: ignore[misc]
        with pytest.raises(TypeError):
            RoutingPolicy("exact")  # positional rejected

    def test_from_dict_normalizes(self):
        assert RoutingPolicy.from_dict(None) == RoutingPolicy()
        assert RoutingPolicy.from_dict("exact").mode == "exact"
        policy = RoutingPolicy.from_dict(
            {"mode": "approx", "hamming_budget": 3, "bands": 2}
        )
        assert (policy.mode, policy.hamming_budget, policy.bands) == (
            "approx",
            3,
            2,
        )
        assert RoutingPolicy.from_dict(policy) is policy

    def test_round_trips_through_dict(self):
        policy = RoutingPolicy(mode="exact", bands=2, block_tokens=64)
        assert RoutingPolicy.from_dict(policy.to_dict()) == policy

    def test_validation_errors_are_typed(self):
        with pytest.raises(ConfigurationError):
            RoutingPolicy(mode="fuzzy")
        with pytest.raises(ConfigurationError):
            RoutingPolicy.from_dict("fuzzy")
        with pytest.raises(ConfigurationError):
            RoutingPolicy(bands=0)
        with pytest.raises(ConfigurationError):
            RoutingPolicy(block_tokens=0)
        with pytest.raises(ConfigurationError):
            RoutingPolicy.from_dict(3.14)

    def test_with_mode(self):
        policy = RoutingPolicy(mode="off", bands=2)
        routed = policy.with_mode("exact")
        assert routed.mode == "exact" and routed.bands == 2
        assert policy.mode == "off"  # original untouched

    def test_rides_on_params_and_repr(self):
        params = SearchParams(w=8, tau=2, k_max=2).with_routing("exact")
        assert params.routing.mode == "exact"
        # Policy must be visible in repr: service cache keys depend on it.
        assert "exact" in repr(params)


# ----------------------------------------------------------------------
class TestFingerprintTier:
    PARAMS = SearchParams(w=8, tau=2, k_max=2)

    def _tier_and_corpus(self, seed=0):
        data, rng = make_corpus(seed)
        searcher = PKWiseSearcher(data, self.PARAMS)
        rank_docs = searcher.rank_docs
        tier = FingerprintTier.from_rank_docs(rank_docs, block_len=16, bands=4)
        return data, searcher, rank_docs, tier

    def test_survivors_keep_every_true_match(self):
        data, searcher, rank_docs, tier = self._tier_and_corpus()
        query = data.encode_query_tokens(
            data.vocabulary.decode(data[0].tokens[8:38])
        )
        ranks = [searcher.order.rank(token) for token in query.tokens]
        mask = tier.survivors(ranks, w=self.PARAMS.w, tau=self.PARAMS.tau)
        matched_docs = {pair.doc_id for pair in searcher.search(query).pairs}
        assert matched_docs  # the planted copy matches
        for doc_id in matched_docs:
            assert mask is None or mask[doc_id]

    def test_survivors_prune_unrelated_docs(self):
        data, searcher, rank_docs, tier = self._tier_and_corpus()
        # A query over a disjoint token universe shares no fingerprint
        # bits with any document: everything must be pruned.
        alien = [hash(f"alien{i}") % (2**31) for i in range(30)]
        mask = tier.survivors(alien, w=self.PARAMS.w, tau=self.PARAMS.tau)
        assert mask is not None
        assert not mask.any()

    def test_survivors_none_when_unprunable(self):
        empty = FingerprintTier(block_len=16, bands=4)
        assert empty.survivors([1, 2, 3], w=8, tau=2) is None
        data, searcher, rank_docs, tier = self._tier_and_corpus()
        # Query shorter than w: no window to fingerprint.
        assert tier.survivors([1, 2], w=8, tau=2) is None
        # Budget at/above the width can never prune.
        assert (
            tier.survivors(
                list(range(30)),
                w=8,
                tau=2,
                mode="approx",
                hamming_budget=FINGERPRINT_BITS,
            )
            is None
        )

    def test_doc_lo_offsets_global_mask(self):
        _, searcher, rank_docs, _ = self._tier_and_corpus()
        tier = FingerprintTier.from_rank_docs(
            rank_docs, block_len=16, bands=4, doc_lo=2
        )
        alien = [hash(f"alien{i}") % (2**31) for i in range(30)]
        mask = tier.survivors(alien, w=8, tau=2)
        assert len(mask) == len(rank_docs)
        assert not mask[:2].any()  # prefix below doc_lo is never alive

    def test_array_round_trip_is_identical(self):
        data, searcher, rank_docs, tier = self._tier_and_corpus()
        arrays = {
            key: np.asarray(value) for key, value in tier.to_arrays().items()
        }
        meta = tier.describe()
        loaded = FingerprintTier.from_arrays(
            arrays,
            block_len=meta["block_len"],
            bands=meta["bands"],
            doc_lo=meta["doc_lo"],
        )
        assert loaded.frozen and loaded.ndocs == tier.ndocs
        query = list(range(40))
        got = loaded.survivors(query, w=8, tau=2)
        want = tier.survivors(query, w=8, tau=2)
        assert np.array_equal(got, want)
        with pytest.raises(IndexStateError):
            loaded.add([1, 2, 3])

    def test_exact_budget_derivation(self):
        assert exact_hamming_budget(0) == 0
        assert exact_hamming_budget(3) == 6


# ----------------------------------------------------------------------
class TestExactRoutingIdentity:
    """Property: exact routing is pair-for-pair identical to off."""

    @pytest.mark.parametrize("params", PARAM_GRID, ids=lambda p: f"w{p.w}t{p.tau}")
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_off_vs_exact_over_random_corpora(self, params, seed):
        data, rng = make_corpus(seed)
        off, routed = routed_pair(data, params)
        for query in make_queries(data, rng):
            want = canonical_pair_order(off.search(query).pairs)
            got = canonical_pair_order(routed.search(query).pairs)
            assert got == want

    def test_per_request_override_matches_params_policy(self):
        params = PARAM_GRID[1]
        data, rng = make_corpus(3)
        off, routed = routed_pair(data, params)
        query = make_queries(data, rng, count=1)[0]
        want = pairs_as_set(off.search(query))
        # Routed params + off override == off; off params + exact
        # override == off results (conservative).
        assert pairs_as_set(routed.search(query, routing=RoutingPolicy())) == want
        assert (
            pairs_as_set(
                off.search(query, routing=RoutingPolicy(mode="exact"))
            )
            == want
        )

    def test_routing_counters_report_pruning(self):
        params = PARAM_GRID[1]
        data, rng = make_corpus(4)
        _, routed = routed_pair(data, params)
        query = make_queries(data, rng, count=2)[1]  # random: prunable
        result = routed.search(query)
        stats = result.stats
        assert stats.routing_checked_docs == len(data)
        assert 0 <= stats.routing_pruned_docs <= stats.routing_checked_docs
        assert stats.phase_seconds()["routing"] >= 0.0

    @pytest.mark.parametrize(
        "start_method",
        [
            pytest.param(
                "fork",
                marks=pytest.mark.skipif(not HAVE_FORK, reason="no fork"),
            ),
            "spawn",
        ],
    )
    def test_parallel_workers_match_serial(self, start_method):
        params = PARAM_GRID[1]
        data, rng = make_corpus(5)
        _, routed = routed_pair(data, params)
        queries = make_queries(data, rng)
        serial = run_searcher(routed, queries)
        parallel = run_searcher(
            routed, queries, jobs=2, start_method=start_method
        )
        assert parallel.results_by_query == serial.results_by_query
        # routing.* counters must merge identically across workers.
        assert (
            parallel.stats.routing_checked_docs
            == serial.stats.routing_checked_docs
        )
        assert (
            parallel.stats.routing_pruned_docs
            == serial.stats.routing_pruned_docs
        )

    def test_sharded_router_matches_single_index(self):
        params = PARAM_GRID[1]
        data, rng = make_corpus(6)
        query = make_queries(data, rng, count=1)[0]
        off = PKWiseSearcher(data, params.with_routing("off"))
        want = pairs_as_set(off.search(query))
        with ShardRouter.local(
            data, params.with_routing("exact"), shards=3
        ) as router:
            assert pairs_as_set(router.search(query)) == want
            # Per-request override through the scatter-gather path.
            assert (
                pairs_as_set(router.search(query, routing="exact")) == want
            )
            assert pairs_as_set(router.search(query, routing="off")) == want

    @pytest.mark.parametrize("seed", [17, 29])
    def test_lsm_interleaving_matches_off(self, seed):
        params = SearchParams(w=8, tau=2, k_max=2)
        rng = random.Random(seed)
        stores = [
            IngestStore.create(
                params.with_routing(mode), data=DocumentCollection()
            )
            for mode in ("off", "exact")
        ]
        vocab = 40

        def new_tokens(length=60):
            return [f"t{rng.randrange(vocab)}" for _ in range(length)]

        live = []
        for step in range(30):
            op = rng.random()
            if op < 0.55 or not live:
                tokens = new_tokens()
                ids = [store.add_tokens(tokens) for store in stores]
                assert ids[0] == ids[1]
                live.append(ids[0])
            elif op < 0.75:
                victim = rng.choice(live)
                live.remove(victim)
                for store in stores:
                    store.remove(victim)
            elif op < 0.9:
                for store in stores:
                    store.flush()
            else:
                for store in stores:
                    store.compact()
            if step % 5 == 4:
                query_tokens = new_tokens(24)
                results = [
                    canonical_pair_order(
                        store.searcher()
                        .search(store.data.encode_query_tokens(query_tokens))
                        .pairs
                    )
                    for store in stores
                ]
                assert results[0] == results[1], f"diverged at step {step}"
        for store in stores:
            store.close()


# ----------------------------------------------------------------------
class TestRoutingPersistence:
    PARAMS = SearchParams(w=8, tau=2, k_max=2)

    def _build(self, routing):
        data, rng = make_corpus(8)
        texts = [" ".join(data.vocabulary.decode(doc.tokens)) for doc in data]
        index = Index.build(texts, self.PARAMS, routing=routing)
        query_text = " ".join(
            data.vocabulary.decode(data[0].tokens[8:38])
        )
        return index, query_text

    @pytest.mark.parametrize("compact", [False, True])
    def test_fingerprints_round_trip_v3(self, tmp_path, compact):
        index, query_text = self._build("exact")
        want = pairs_as_set(index.search_text(query_text))
        path = tmp_path / "routed.pkz"
        index.save(path, compact=compact)
        loaded = Index.open(path, mmap=compact)
        assert loaded.params.routing.mode == "exact"
        if compact:
            tier = loaded.searcher()._routing_tier
            assert isinstance(tier, FingerprintTier) and tier.frozen
        assert pairs_as_set(loaded.search_text(query_text)) == want
        result = loaded.search_text(query_text)
        assert result.stats.routing_checked_docs > 0
        loaded.close()

    def test_open_raises_eagerly_without_fingerprints(self, tmp_path):
        index, _ = self._build(None)  # saved with routing off
        path = tmp_path / "plain.pkz"
        index.save(path, compact=True)
        with pytest.raises(RoutingUnavailableError):
            Index.open(path, mmap=True, routing="exact")
        # Overriding with "off" on the same snapshot is fine.
        Index.open(path, mmap=True, routing="off").close()

    def test_query_time_raise_without_fingerprints(self, tmp_path):
        index, query_text = self._build(None)
        path = tmp_path / "plain.pkz"
        index.save(path, compact=True)
        loaded = Index.open(path, mmap=True)
        with pytest.raises(RoutingUnavailableError):
            loaded.search_text(query_text, routing="exact")
        # Routing off still searches.
        assert loaded.search_text(query_text, routing="off").pairs
        loaded.close()


# ----------------------------------------------------------------------
class TestRoutingService:
    PARAMS = SearchParams(w=8, tau=2, k_max=2)

    def _service(self):
        data, rng = make_corpus(9)
        searcher = PKWiseSearcher(data, self.PARAMS.with_routing("exact"))
        return SearchService(searcher, data), data, rng

    def test_cache_is_keyed_per_policy(self):
        service, data, rng = self._service()
        query = make_queries(data, rng, count=1)[0]
        first = service.search(query, routing="exact")
        second = service.search(query, routing="exact")
        crossed = service.search(query, routing="off")
        assert not first.cached
        assert second.cached
        assert not crossed.cached  # a different policy is a different key
        assert pairs_as_set(first) == pairs_as_set(crossed)
        service.close()

    def test_http_routing_body(self):
        service, data, rng = self._service()
        query_text = " ".join(data.vocabulary.decode(data[0].tokens[8:38]))
        httpd = serve_http(service, port=0)
        thread = threading.Thread(target=httpd.serve_forever, daemon=True)
        thread.start()
        try:
            def post(payload):
                request = urllib.request.Request(
                    f"{httpd.url}/search",
                    data=json.dumps(payload).encode(),
                    headers={"Content-Type": "application/json"},
                )
                try:
                    with urllib.request.urlopen(request) as reply:
                        return reply.status, json.loads(reply.read())
                except urllib.error.HTTPError as exc:
                    return exc.code, json.loads(exc.read())

            status, routed = post({"text": query_text, "routing": "exact"})
            assert status == 200
            status, off = post({"text": query_text, "routing": {"mode": "off"}})
            assert status == 200
            assert routed["pairs"] == off["pairs"]
            status, error = post({"text": query_text, "routing": "fuzzy"})
            assert status == 400 and "routing" in error["error"]
        finally:
            httpd.shutdown()
            httpd.server_close()
            service.close()
