"""Tests for the interval index and the window-level inverted index."""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import PartitionScheme
from repro.index import IntervalIndex, WindowInvertedIndex, merge_intervals
from repro.index.intervals import WindowInterval, total_window_count
from repro.signatures import generate_signatures


class TestIntervals:
    def test_merge_overlapping(self):
        merged = merge_intervals(
            [WindowInterval(0, 1, 5), WindowInterval(0, 3, 8)]
        )
        assert merged == [WindowInterval(0, 1, 8)]

    def test_merge_touching(self):
        merged = merge_intervals(
            [WindowInterval(0, 1, 2), WindowInterval(0, 3, 4)]
        )
        assert merged == [WindowInterval(0, 1, 4)]

    def test_no_merge_across_documents(self):
        intervals = [WindowInterval(0, 1, 5), WindowInterval(1, 1, 5)]
        assert merge_intervals(intervals) == intervals

    def test_gap_merge_rule(self):
        # Section 4.3: merge when u2 - v1 < w/2.
        a = WindowInterval(0, 0, 10)
        b = WindowInterval(0, 18, 20)  # gap u2 - v1 = 8
        assert merge_intervals([a, b], merge_gap=10) == [WindowInterval(0, 0, 20)]
        assert merge_intervals([a, b], merge_gap=8) == [a, b]

    def test_contained_interval(self):
        merged = merge_intervals(
            [WindowInterval(0, 1, 10), WindowInterval(0, 3, 5)]
        )
        assert merged == [WindowInterval(0, 1, 10)]

    def test_total_window_count(self):
        assert total_window_count(
            [WindowInterval(0, 1, 3), WindowInterval(1, 0, 0)]
        ) == 4

    def test_interval_str(self):
        assert str(WindowInterval(2, 3, 7)) == "d2[3,7]"


def interval_presence(index: IntervalIndex, signature, num_windows: int) -> set[int]:
    """Window starts covered by the signature's intervals."""
    covered = set()
    for interval in index.probe(signature):
        covered.update(range(interval.u, interval.v + 1))
    assert all(0 <= start < num_windows for start in covered)
    return covered


class TestIntervalIndex:
    def test_paper_example5_intervals(self):
        E, G, A, F, C, B, D = 4, 6, 0, 5, 2, 1, 3
        ranks = [E, G, A, F, C, B, D]
        scheme = PartitionScheme(universe_size=7, borders=(4,))
        index = IntervalIndex(4, 1, scheme)
        index.index_document(0, ranks)
        assert index.probe((A,)) == [WindowInterval(0, 0, 2)]
        assert index.probe((E, F)) == [WindowInterval(0, 0, 0)]
        assert index.probe((C,)) == [
            WindowInterval(0, 1, 1),
            WindowInterval(0, 3, 3),
        ]
        assert index.probe((B,)) == [WindowInterval(0, 2, 3)]

    def test_probe_missing_signature(self):
        scheme = PartitionScheme.single(5)
        index = IntervalIndex(2, 0, scheme)
        index.index_document(0, [0, 1, 2])
        assert index.probe((4,)) == []
        assert (0,) in index

    @settings(max_examples=60, deadline=None)
    @given(seed=st.integers(0, 1_000_000))
    def test_intervals_are_maximal_and_exact(self, seed):
        rng = random.Random(seed)
        universe = rng.randint(3, 15)
        k_max = rng.randint(1, 3)
        borders = tuple(sorted(rng.randint(0, universe) for _ in range(k_max - 1)))
        scheme = PartitionScheme(universe_size=universe, borders=borders)
        w = rng.randint(2, 8)
        tau = rng.randint(0, min(3, w - 1))
        ranks = [rng.randrange(universe) for _ in range(rng.randint(w, 40))]
        num_windows = len(ranks) - w + 1

        index = IntervalIndex(w, tau, scheme)
        index.index_document(0, ranks)

        # Reference presence per window.
        presence: dict = {}
        for start in range(num_windows):
            window = sorted(ranks[start : start + w])
            for signature in set(generate_signatures(window, tau, scheme)):
                presence.setdefault(signature, set()).add(start)

        # Exactness: the index covers exactly the presence sets.
        all_signatures = set(presence)
        for signature in all_signatures:
            assert interval_presence(index, signature, num_windows) == presence[
                signature
            ]
        # Maximality: intervals of one signature are disjoint and
        # non-adjacent.
        for signature in all_signatures:
            intervals = sorted(index.probe(signature))
            for left, right in zip(intervals, intervals[1:]):
                assert right.u > left.v + 1

    def test_multiple_documents(self):
        scheme = PartitionScheme.single(4)
        index = IntervalIndex(2, 0, scheme)
        index.index_document(0, [0, 1, 2])
        index.index_document(1, [0, 0, 0])
        assert index.num_documents == 2
        assert {interval.doc_id for interval in index.probe((0,))} == {0, 1}

    def test_hashed_mode_equivalent(self):
        rng = random.Random(9)
        scheme = PartitionScheme(universe_size=8, borders=(4,))
        ranks = [rng.randrange(8) for _ in range(30)]
        plain = IntervalIndex(4, 1, scheme)
        hashed = IntervalIndex(4, 1, scheme, hashed=True)
        plain.index_document(0, ranks)
        hashed.index_document(0, ranks)
        assert plain.num_postings == hashed.num_postings
        window = sorted(ranks[0:4])
        for signature in set(generate_signatures(window, 1, scheme)):
            assert plain.probe(signature) == hashed.probe(signature)

    def test_build_stats_accumulate(self):
        scheme = PartitionScheme.single(5)
        index = IntervalIndex(2, 0, scheme)
        index.index_document(0, [0, 1, 2, 3])
        assert index.build_stats["generated_signatures"] > 0
        assert index.num_windows == 3


class TestWindowInvertedIndex:
    def test_postings_per_window(self):
        scheme = PartitionScheme.single(4)
        index = WindowInvertedIndex(2, 0, scheme)
        index.index_document(0, [0, 1, 0])
        # tau=0: prefix length 1; windows [0,1] and [0,1] sorted -> rank 0
        # is the prefix of both.
        assert index.probe((0,)) == [(0, 0), (0, 1)]

    def test_interval_index_is_smaller(self):
        # On a repetitive document, interval postings collapse runs.
        rng = random.Random(4)
        scheme = PartitionScheme(universe_size=6, borders=(3,))
        ranks = [rng.randrange(6) for _ in range(60)]
        interval_index = IntervalIndex(6, 1, scheme)
        window_index = WindowInvertedIndex(6, 1, scheme)
        interval_index.index_document(0, ranks)
        window_index.index_document(0, ranks)
        assert interval_index.size_in_entries() <= window_index.size_in_entries()

    def test_signature_and_posting_counts(self):
        scheme = PartitionScheme.single(3)
        index = WindowInvertedIndex(2, 0, scheme)
        index.index_document(0, [0, 1, 2])
        assert index.num_signatures >= 1
        assert index.num_postings == 2  # one prefix token per window
