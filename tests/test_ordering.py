"""Tests for window frequencies and the global order."""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import DocumentCollection, GlobalOrder
from repro.ordering import window_frequencies


def brute_window_frequencies(data, w):
    freq = [0] * len(data.vocabulary)
    for document in data:
        n = len(document)
        for token in range(len(data.vocabulary)):
            freq[token] += sum(
                1
                for start in range(max(0, n - w + 1))
                if token in document.tokens[start : start + w]
            )
    return freq


class TestWindowFrequencies:
    def test_paper_example(self):
        # Example 1: window frequency of the/lord/of = 2, rings = 1.
        data = DocumentCollection()
        data.add_text("the lord of the rings")
        freq = window_frequencies(data, 4)
        vocab = data.vocabulary
        assert freq[vocab.id_of("the")] == 2
        assert freq[vocab.id_of("lord")] == 2
        assert freq[vocab.id_of("of")] == 2
        assert freq[vocab.id_of("rings")] == 1

    def test_short_document_contributes_nothing(self):
        data = DocumentCollection()
        data.add_text("a b")
        assert window_frequencies(data, 5) == [0, 0]

    def test_w_equals_one(self):
        data = DocumentCollection()
        data.add_text("a b a")
        freq = window_frequencies(data, 1)
        assert freq[data.vocabulary.id_of("a")] == 2
        assert freq[data.vocabulary.id_of("b")] == 1

    @settings(max_examples=40, deadline=None)
    @given(st.integers(0, 10_000), st.integers(1, 8))
    def test_matches_brute_force(self, seed, w):
        rng = random.Random(seed)
        data = DocumentCollection()
        for _ in range(rng.randint(1, 3)):
            length = rng.randint(1, 25)
            data.add_tokens([f"t{rng.randrange(6)}" for _ in range(length)])
        assert window_frequencies(data, w) == brute_window_frequencies(data, w)


class TestGlobalOrder:
    def _paper_order(self):
        data = DocumentCollection()
        data.add_text("the lord of the rings")
        return data, GlobalOrder(data, 4)

    def test_example2_order(self):
        # Paper Example 2: O is E < F < D < A < B < C, i.e. rings (D)
        # before the/lord/of; with ties broken lexicographically the data
        # tokens sort rings < lord < of < the.
        data, order = self._paper_order()
        vocab = data.vocabulary
        ranks = {name: order.rank(vocab.id_of(name)) for name in
                 ("the", "lord", "of", "rings")}
        assert ranks["rings"] == 0  # unique rarest data token
        assert ranks["lord"] < ranks["of"] < ranks["the"]  # freq ties, lexicographic

    def test_query_only_tokens_rank_first(self):
        data, order = self._paper_order()
        query_token = data.vocabulary.add("and")
        rank = order.rank(query_token)
        assert rank < 0  # before every data token

    def test_extra_ranks_stable(self):
        data, order = self._paper_order()
        t1 = data.vocabulary.add("zzz1")
        t2 = data.vocabulary.add("zzz2")
        assert order.rank(t1) == order.rank(t1)
        assert order.rank(t1) != order.rank(t2)

    def test_frequency_of_rank(self):
        data, order = self._paper_order()
        assert order.frequency_of_rank(0) == 1  # rings
        assert order.frequency_of_rank(-5) == 0  # any query-only token

    def test_relative_frequency(self):
        data, order = self._paper_order()
        assert order.num_data_windows == 2
        assert order.frequency_of_rank(3) / 2 == order.relative_frequency_of_rank(3)

    def test_rank_is_permutation(self):
        rng = random.Random(0)
        data = DocumentCollection()
        for _ in range(4):
            data.add_tokens([f"t{rng.randrange(30)}" for _ in range(30)])
        order = GlobalOrder(data, 5)
        ranks = sorted(order.rank(t) for t in range(len(data.vocabulary)))
        assert ranks == list(range(len(data.vocabulary)))

    def test_order_sorted_by_frequency(self):
        rng = random.Random(1)
        data = DocumentCollection()
        for _ in range(4):
            data.add_tokens([f"t{rng.randrange(15)}" for _ in range(40)])
        order = GlobalOrder(data, 6)
        freqs = [order.frequency_of_rank(r) for r in range(order.universe_size)]
        assert freqs == sorted(freqs)

    def test_sorted_window(self):
        data = DocumentCollection()
        document = data.add_text("the lord of the rings")
        order = GlobalOrder(data, 4)
        window = order.sorted_window(document, 0, 4)
        assert window == sorted(window)
        assert len(window) == 4

    def test_rank_document_preserves_positions(self):
        data = DocumentCollection()
        document = data.add_text("a b a")
        order = GlobalOrder(data, 2)
        ranks = order.rank_document(document)
        assert ranks[0] == ranks[2]
        assert ranks[0] != ranks[1]
