"""Tests for the structural analysis utilities (Section 7.3 measurements)."""

from __future__ import annotations

import pytest

from repro import GlobalOrder, PartitionScheme, PKWiseSearcher, SearchParams
from repro.eval import (
    multiset_jaccard,
    postings_statistics,
    prefix_sharing,
    selectivity_by_class,
)


class TestMultisetJaccard:
    def test_identical(self):
        assert multiset_jaccard([1, 1, 2], [1, 1, 2]) == 1.0

    def test_disjoint(self):
        assert multiset_jaccard([1], [2]) == 0.0

    def test_multiplicities(self):
        # {A,A,B} vs {A,B,B}: intersection {A,B}=2, union 4 -> 0.5.
        assert multiset_jaccard([1, 1, 2], [1, 2, 2]) == 0.5

    def test_empty(self):
        assert multiset_jaccard([], []) == 1.0


class TestPrefixSharing:
    def test_high_sharing_on_real_like_text(self, small_corpus):
        params = SearchParams(w=20, tau=3, k_max=2)
        order = GlobalOrder(small_corpus, params.w)
        scheme = PartitionScheme(
            universe_size=order.universe_size,
            borders=(order.universe_size // 2,),
        )
        report = prefix_sharing(
            list(small_corpus), order, params.w, params.tau, scheme
        )
        # Section 7.3: adjacent prefixes are highly similar.
        assert report.average_jaccard > 0.5
        assert report.num_adjacent_pairs == sum(
            max(0, document.num_windows(20) - 1) for document in small_corpus
        )
        assert 0.0 <= report.unchanged_fraction <= 1.0

    def test_sharing_increases_with_w(self, small_corpus):
        order25 = GlobalOrder(small_corpus, 25)
        order10 = GlobalOrder(small_corpus, 10)
        scheme25 = PartitionScheme.single(order25.universe_size)
        scheme10 = PartitionScheme.single(order10.universe_size)
        wide = prefix_sharing(list(small_corpus), order25, 25, 2, scheme25)
        narrow = prefix_sharing(list(small_corpus), order10, 10, 2, scheme10)
        # Paper: sharing grows from 0.872 (w=25) to 0.966 (w=100).
        assert wide.average_jaccard >= narrow.average_jaccard - 0.05

    def test_empty_documents(self):
        from repro import DocumentCollection

        data = DocumentCollection()
        data.add_text("a b")
        order = GlobalOrder(data, 5)
        scheme = PartitionScheme.single(order.universe_size)
        report = prefix_sharing(list(data), order, 5, 1, scheme)
        assert report.num_adjacent_pairs == 0
        assert report.average_jaccard == 0.0

    def test_report_str(self, small_corpus):
        order = GlobalOrder(small_corpus, 10)
        scheme = PartitionScheme.single(order.universe_size)
        report = prefix_sharing(list(small_corpus)[:1], order, 10, 1, scheme)
        assert "Jaccard" in str(report)


class TestPostingsStatistics:
    def test_counts_match_index(self, small_corpus):
        params = SearchParams(w=10, tau=2, k_max=3)
        searcher = PKWiseSearcher(small_corpus, params)
        report = postings_statistics(searcher.index)
        assert report.num_signatures == searcher.index.num_signatures
        assert report.num_postings == searcher.index.num_postings
        assert report.mean_length == pytest.approx(
            report.num_postings / report.num_signatures
        )
        assert 0.0 <= report.singleton_fraction <= 1.0
        assert "signatures" in str(report)

    def test_empty_index(self):
        from repro.index import IntervalIndex

        index = IntervalIndex(5, 1, PartitionScheme.single(10))
        report = postings_statistics(index)
        assert report.num_signatures == 0
        assert report.mean_length == 0.0


class TestSelectivityByClass:
    def test_monotone_across_classes(self, small_corpus):
        order = GlobalOrder(small_corpus, 10)
        scheme = PartitionScheme(
            universe_size=order.universe_size,
            borders=(
                order.universe_size // 3,
                2 * order.universe_size // 3,
            ),
        )
        selectivity = selectivity_by_class(small_corpus, order, scheme)
        # The order is sorted by frequency, so class means must ascend.
        assert selectivity[1] <= selectivity[2] <= selectivity[3]
