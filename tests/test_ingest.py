"""Tests for the LSM streaming-ingestion write path (:mod:`repro.ingest`).

The contract under test, end to end:

* **Exactness for any interleaving** — a store mutated by any sequence
  of adds / removes / flushes / compactions returns pair-for-pair the
  results of a one-shot :class:`~repro.PKWiseSearcher` built over the
  final collection state (Theorem 1: the shared global order makes
  tier boundaries invisible to the result set).
* **Serving never stops** — installs happen inside the service's
  write-lock critical section via the factory form of
  ``swap_searcher``; queries interleaved with a mutation storm see
  zero :class:`~repro.ServiceOverloadError` and per-thread epochs
  only move forward.
* **Crash safety** — segment files and the manifest are persisted
  before the in-memory flip; dying at any ``ingest.compact`` phase (or
  mid-WAL-append) loses nothing that was acknowledged: reopen replays
  the WAL and reproduces the pre-crash result set exactly.
"""

from __future__ import annotations

import os
import pathlib
import random
import subprocess
import sys
import threading

import pytest

import repro
from repro import (
    CompactionPolicy,
    DocumentCollection,
    IngestStore,
    PKWiseSearcher,
    SearchParams,
    SearchService,
    ServiceOverloadError,
    faults,
)
from repro.errors import FaultInjectionError
from repro.eval.harness import canonical_pair_order
from repro.faults import KILL_EXIT_CODE, FaultPlan, FaultSpec
from repro.ingest import read_wal, wal_generations
from repro.persistence import PersistenceError

PARAMS = SearchParams(w=8, tau=2, k_max=2)
VOCAB = 40
DOC_LEN = 36

#: Absolute src/ path so crash-test subprocesses import this checkout.
SRC_DIR = str(pathlib.Path(repro.__file__).resolve().parent.parent)


@pytest.fixture(autouse=True)
def _no_fault_leak():
    faults.clear_plan()
    yield
    faults.clear_plan()


def make_tokens(rng, length=DOC_LEN):
    return [f"t{rng.randrange(VOCAB)}" for _ in range(length)]


def make_query(data, rng, length=24):
    return data.encode_query_tokens(make_tokens(rng, length))


def store_pairs(store, query):
    return canonical_pair_order(store.searcher().search(query).pairs)


def one_shot_reference(texts, live_ids):
    """A one-shot searcher over the full text history + tombstones."""
    ref_data = DocumentCollection()
    for tokens in texts:
        ref_data.add_tokens(tokens)
    ref = PKWiseSearcher(ref_data, PARAMS)
    for doc_id in set(range(len(texts))) - set(live_ids):
        ref._remove_document(doc_id)
    return ref_data, ref


class TestStoreBasics:
    def test_memtable_only_parity(self):
        rng = random.Random(0)
        texts = [make_tokens(rng) for _ in range(4)]
        store = IngestStore.create(PARAMS, data=DocumentCollection())
        for tokens in texts:
            store.add_tokens(tokens)
        ref_data, ref = one_shot_reference(texts, range(len(texts)))
        query_tokens = make_tokens(rng, 24)
        got = store_pairs(store, store.data.encode_query_tokens(query_tokens))
        want = canonical_pair_order(
            ref.search(ref_data.encode_query_tokens(query_tokens)).pairs
        )
        assert got == want
        store.close()

    def test_flush_and_compact_preserve_results(self):
        rng = random.Random(1)
        store = IngestStore.create(PARAMS, data=DocumentCollection())
        for _ in range(6):
            store.add_tokens(make_tokens(rng))
        query = make_query(store.data, rng)
        before = store_pairs(store, query)
        assert store.flush() is not None
        assert store.num_segments == 1
        assert store.memtable_docs == 0
        assert store_pairs(store, query) == before
        store.remove(2)
        store.add_tokens(make_tokens(rng))
        mid = store_pairs(store, query)
        store.compact()
        assert store.num_segments == 1
        assert not store.removed  # tombstone physically purged
        assert store_pairs(store, query) == mid
        store.close()

    def test_policy_triggers_synchronous_flush(self):
        rng = random.Random(2)
        policy = CompactionPolicy(memtable_max_docs=3, max_segments=2)
        store = IngestStore.create(
            PARAMS, data=DocumentCollection(), policy=policy
        )
        for _ in range(10):
            store.add_tokens(make_tokens(rng))
        assert store.memtable_docs < 10  # rolls happened automatically
        assert store.num_segments >= 1
        query = make_query(store.data, rng)
        got = store_pairs(store, query)
        store.compact()
        assert store_pairs(store, query) == got
        store.close()

    def test_segment_cache_stays_warm_across_memtable_adds(self):
        rng = random.Random(3)
        store = IngestStore.create(PARAMS, data=DocumentCollection())
        for _ in range(5):
            store.add_tokens(make_tokens(rng))
        store.flush()
        query = make_query(store.data, rng)
        store.searcher().search(query)
        hits0 = store.segment_cache.hits
        misses0 = store.segment_cache.misses
        # A memtable insert must NOT invalidate the frozen-segment
        # partial result: its generation vector is unchanged.
        store.add_tokens(make_tokens(rng))
        store.searcher().search(query)
        assert store.segment_cache.hits == hits0 + 1
        assert store.segment_cache.misses == misses0
        # A remove bumps the tombstone epoch: partial result recomputed.
        store.remove(0)
        store.searcher().search(query)
        assert store.segment_cache.misses == misses0 + 1
        store.close()

    def test_compacted_searcher_is_plain_and_exact(self):
        rng = random.Random(4)
        store = IngestStore.create(PARAMS, data=DocumentCollection())
        for _ in range(5):
            store.add_tokens(make_tokens(rng))
        store.flush()
        store.add_tokens(make_tokens(rng))
        store.remove(1)
        query = make_query(store.data, rng)
        live = store_pairs(store, query)
        folded = store.searcher().compacted()
        assert folded.frozen
        assert folded.removed_documents == frozenset({1})
        assert canonical_pair_order(folded.search(query).pairs) == live
        store.close()


class TestInterleavingProperty:
    """Seeded random interleavings of add/remove/flush/compact."""

    @pytest.mark.parametrize("seed", [11, 23, 37])
    def test_serial_interleaving_matches_one_shot(self, seed):
        rng = random.Random(seed)
        store = IngestStore.create(PARAMS, data=DocumentCollection())
        texts: list[list[str]] = []
        live_ids: list[int] = []
        for _step in range(40):
            op = rng.random()
            if op < 0.6 or not live_ids:
                tokens = make_tokens(rng)
                live_ids.append(store.add_tokens(tokens))
                texts.append(tokens)
            elif op < 0.75:
                victim = rng.choice(live_ids)
                live_ids.remove(victim)
                store.remove(victim)
            elif op < 0.9:
                store.flush()
            else:
                store.compact()
        ref_data, ref = one_shot_reference(texts, live_ids)
        for _ in range(5):
            query_tokens = make_tokens(rng, 24)
            got = store_pairs(
                store, store.data.encode_query_tokens(query_tokens)
            )
            want = canonical_pair_order(
                ref.search(ref_data.encode_query_tokens(query_tokens)).pairs
            )
            assert got == want
        store.close()

    def test_interleaving_under_live_service_traffic(self):
        rng = random.Random(99)
        data = DocumentCollection()
        store = IngestStore.create(PARAMS, data=data)
        seed_texts = [make_tokens(rng) for _ in range(6)]
        for tokens in seed_texts:
            store.add_tokens(tokens)
        service = SearchService(
            store.searcher(), data, max_workers=2, max_queue=256
        )
        queries = [make_query(data, rng) for _ in range(4)]
        overloads: list[Exception] = []
        errors: list[Exception] = []
        epochs: list[list[int]] = [[] for _ in queries]
        stop = threading.Event()

        def reader(slot: int, query) -> None:
            while not stop.is_set():
                try:
                    response = service.search(query)
                except ServiceOverloadError as exc:
                    overloads.append(exc)
                    continue
                except Exception as exc:  # noqa: BLE001 - collected
                    errors.append(exc)
                    continue
                epochs[slot].append(response.index_epoch)

        threads = [
            threading.Thread(target=reader, args=(slot, query))
            for slot, query in enumerate(queries)
        ]
        for thread in threads:
            thread.start()
        texts = list(seed_texts)
        live_ids = list(range(len(seed_texts)))
        try:
            for _step in range(30):
                op = rng.random()
                if op < 0.55 or not live_ids:
                    tokens = make_tokens(rng)
                    live_ids.append(store.add_tokens(tokens))
                    texts.append(tokens)
                elif op < 0.7:
                    victim = rng.choice(live_ids)
                    live_ids.remove(victim)
                    store.remove(victim)
                elif op < 0.85:
                    store.flush()
                else:
                    store.compact()
        finally:
            stop.set()
            for thread in threads:
                thread.join()
            service.close()
        assert not overloads, overloads  # serving never blocked on folds
        assert not errors, errors
        for per_query in epochs:
            assert per_query == sorted(per_query)  # epochs only move up
        # The final state is exact against a one-shot build.
        ref_data, ref = one_shot_reference(texts, live_ids)
        for query_tokens in (make_tokens(rng, 24) for _ in range(3)):
            got = store_pairs(
                store, store.data.encode_query_tokens(query_tokens)
            )
            want = canonical_pair_order(
                ref.search(ref_data.encode_query_tokens(query_tokens)).pairs
            )
            assert got == want
        store.close()


def drive_durable(directory, *, steps, seed=7):
    """Deterministic durable-store workload; returns the open store."""
    rng = random.Random(seed)
    if (directory / "MANIFEST").exists():
        store = IngestStore.open(directory)
    else:
        store = IngestStore.create(
            PARAMS, directory=directory, data=DocumentCollection()
        )
    live_ids: list[int] = []
    for _step in range(steps):
        op = rng.random()
        if op < 0.7 or not live_ids:
            live_ids.append(store.add_tokens(make_tokens(rng)))
        elif op < 0.85:
            victim = rng.choice(live_ids)
            live_ids.remove(victim)
            store.remove(victim)
        else:
            store.flush()
    return store, live_ids


class TestDurability:
    def test_reopen_replays_wal_identically(self, tmp_path):
        directory = tmp_path / "store"
        store, _live = drive_durable(directory, steps=20)
        rng = random.Random(123)
        query_tokens = make_tokens(rng, 24)
        before = store_pairs(
            store, store.data.encode_query_tokens(query_tokens)
        )
        next_id = store.next_doc_id
        removed = set(store.removed)
        store.close()  # memtable contents now exist only in the WAL

        reopened = IngestStore.open(directory)
        assert reopened.next_doc_id == next_id
        assert reopened.removed == removed
        after = store_pairs(
            reopened, reopened.data.encode_query_tokens(query_tokens)
        )
        assert after == before
        assert reopened.metrics_snapshot()["counters"][
            "ingest.wal_replayed"
        ] > 0
        reopened.close()

    def test_torn_wal_tail_is_tolerated(self, tmp_path):
        directory = tmp_path / "store"
        store, _live = drive_durable(directory, steps=12)
        rng = random.Random(200)
        store.add_tokens(make_tokens(rng))  # guarantee a tail record
        docs_before = store.next_doc_id
        store.close()
        _gen, tail_path = wal_generations(directory)[-1]
        records, torn = read_wal(tail_path)
        assert not torn and records
        # Tear the last record mid-line, as a crash mid-append would.
        lines = tail_path.read_bytes().splitlines(keepends=True)
        torn_raw = b"".join(lines[:-1]) \
            + lines[-1][: max(1, len(lines[-1]) // 2)]
        tail_path.write_bytes(torn_raw)
        kept, torn_now = read_wal(tail_path)
        assert torn_now
        assert len(kept) == len(records) - 1
        reopened = IngestStore.open(directory)
        # Exactly the torn record is gone; every intact one replayed.
        lost = 1 if records[-1]["op"] == "add" else 0
        assert reopened.next_doc_id == docs_before - lost
        snap = reopened.metrics_snapshot()
        assert snap["counters"]["ingest.torn_wal_tails"] == 1
        reopened.close()

    def test_damaged_wal_middle_is_a_typed_error(self, tmp_path):
        directory = tmp_path / "store"
        store, _live = drive_durable(directory, steps=10)
        rng = random.Random(201)
        store.add_tokens(make_tokens(rng))
        store.add_tokens(make_tokens(rng))  # >= 2 records in the tail
        store.close()
        _gen, tail_path = wal_generations(directory)[-1]
        lines = tail_path.read_bytes().splitlines(keepends=True)
        assert len(lines) >= 2
        # Corrupt a record that is FOLLOWED by an intact one: that is
        # damage, not a torn tail, and must refuse loudly.
        lines[0] = b"garbage\tnothash\n"
        tail_path.write_bytes(b"".join(lines))
        with pytest.raises(PersistenceError, match="damaged"):
            read_wal(tail_path)
        with pytest.raises(PersistenceError):
            IngestStore.open(directory)

    def test_corrupt_manifest_is_a_typed_error(self, tmp_path):
        directory = tmp_path / "store"
        store, _live = drive_durable(directory, steps=8)
        store.flush()
        store.close()
        manifest = directory / "MANIFEST"
        raw = bytearray(manifest.read_bytes())
        raw[len(raw) // 2] ^= 0xFF
        manifest.write_bytes(bytes(raw))
        with pytest.raises(PersistenceError):
            IngestStore.open(directory)

    def test_orphan_segments_are_cleaned_at_open(self, tmp_path):
        directory = tmp_path / "store"
        store, _live = drive_durable(directory, steps=10)
        store.flush()
        store.close()
        orphan = directory / "segment.g000099.idx"
        orphan.write_bytes(b"leftover from a crashed compaction")
        reopened = IngestStore.open(directory)
        assert not orphan.exists()
        snap = reopened.metrics_snapshot()
        assert snap["counters"]["ingest.recovered_orphans"] == 1
        reopened.close()


CRASH_SCRIPT = """
import pathlib, sys
from repro import IngestStore
from repro.faults import FaultPlan, FaultSpec, install_plan

directory = pathlib.Path(sys.argv[1])
phase = sys.argv[2]
store = IngestStore.open(directory)
install_plan(FaultPlan([
    FaultSpec(point="ingest.compact", kind="kill", match={"phase": phase}),
]))
store.compact()  # dies here with KILL_EXIT_CODE
print("compaction survived the kill plan", file=sys.stderr)
sys.exit(3)
"""


class TestCrashRecovery:
    @pytest.mark.parametrize("phase", ["fold", "segment", "manifest"])
    def test_kill_mid_compaction_recovers_exactly(self, tmp_path, phase):
        directory = tmp_path / "store"
        store, live = drive_durable(directory, steps=18)
        rng = random.Random(5)
        # Guarantee the child's compaction has real work to do: a
        # memtable resident and a tombstone inside the folded span.
        store.add_tokens(make_tokens(rng))
        store.remove(live[0])
        query_tokens = make_tokens(rng, 24)
        before = store_pairs(
            store, store.data.encode_query_tokens(query_tokens)
        )
        docs_before = store.next_doc_id
        removed_before = set(store.removed)
        store.close()

        env = {**os.environ, "PYTHONPATH": SRC_DIR}
        proc = subprocess.run(
            [sys.executable, "-c", CRASH_SCRIPT, str(directory), phase],
            capture_output=True,
            text=True,
            timeout=120,
            env=env,
        )
        assert proc.returncode == KILL_EXIT_CODE, proc.stderr

        reopened = IngestStore.open(directory)
        assert reopened.next_doc_id == docs_before
        assert reopened.removed == removed_before
        requery = reopened.data.encode_query_tokens(query_tokens)
        assert store_pairs(reopened, requery) == before
        # The recovered store keeps working: the same compaction,
        # retried without the fault, converges to the same results.
        reopened.compact()
        assert store_pairs(reopened, requery) == before
        reopened.close()

    def test_raise_mid_fold_leaves_store_serving(self, tmp_path):
        directory = tmp_path / "store"
        store, live = drive_durable(directory, steps=12)
        rng = random.Random(6)
        store.add_tokens(make_tokens(rng))
        store.remove(live[0])
        query = make_query(store.data, rng)
        before = store_pairs(store, query)
        faults.install_plan(FaultPlan([
            FaultSpec(
                point="ingest.compact",
                kind="raise",
                match={"phase": "segment"},
                max_triggers=1,
            )
        ]))
        with pytest.raises(FaultInjectionError):
            store.compact()
        # Nothing flipped: same results, and the store stays writable.
        assert store_pairs(store, query) == before
        store.add_tokens(make_tokens(rng))
        faults.clear_plan()
        store.compact()  # the retry succeeds
        assert store.num_segments == 1
        assert not store.removed
        store.close()


class TestQueryAfterAddTokenVisibility:
    """Regression: tokens interned by live-mode adds must resolve in
    every later text query, and unknown tokens must keep the
    OOV-sentinel contract (``encode_query`` never raises; only the
    frozen lookups raise the typed
    :class:`~repro.errors.UnknownTokenError`) on every live path —
    in-memory upgrade, durable resume, compact-snapshot upgrade, and
    the service's ``add_text``.
    """

    NEW_WORDS = [f"freshword{i}" for i in range(DOC_LEN)]

    def _seed_texts(self):
        rng = random.Random(7)
        return [" ".join(make_tokens(rng)) for _ in range(3)]

    def _new_doc_text(self):
        return " ".join(self.NEW_WORDS)

    def _probe_text(self):
        # A w-window-sized slice of the new document: after the add it
        # must self-match; before, every token is OOV.
        return " ".join(self.NEW_WORDS[: PARAMS.w + PARAMS.tau + 1])

    def _assert_resolves(self, index):
        from repro.tokenize import OOV_TOKEN_ID

        query = index.encode_query(self._probe_text())
        assert OOV_TOKEN_ID not in query.tokens
        pairs = index.search_text(self._probe_text()).pairs
        assert pairs, "memtable-interned tokens did not resolve"

    def test_in_memory_upgrade_resolves_new_tokens(self):
        from repro.tokenize import OOV_TOKEN_ID

        index = repro.Index.build(self._seed_texts(), PARAMS)
        before = index.encode_query(self._probe_text())
        assert set(before.tokens) == {OOV_TOKEN_ID}  # sentinel, no raise
        assert not index.search_text(self._probe_text()).pairs
        index.add(self._new_doc_text())
        self._assert_resolves(index)
        index.close()

    def test_durable_resume_resolves_new_tokens(self, tmp_path):
        directory = tmp_path / "live"
        index = repro.Index.open_live(directory, PARAMS)
        for text in self._seed_texts():
            index.add(text)
        index.add(self._new_doc_text())
        self._assert_resolves(index)
        index.close()
        # Resume: WAL replay must re-intern into the reopened vocab.
        reopened = repro.Index.open_live(directory)
        self._assert_resolves(reopened)
        reopened.close()

    def test_compact_snapshot_upgrade_resolves_new_tokens(self, tmp_path):
        path = tmp_path / "snap.pkz"
        built = repro.Index.build(self._seed_texts(), PARAMS)
        built.save(path, compact=True)
        built.close()
        index = repro.Index.open(path, mmap=True)
        assert index.frozen
        index.add(self._new_doc_text())  # upgrades frozen -> live
        self._assert_resolves(index)
        index.close()

    def test_service_add_text_resolves_new_tokens(self):
        from repro.tokenize import OOV_TOKEN_ID

        index = repro.Index.build(self._seed_texts(), PARAMS)
        service = SearchService(index.searcher(), index.data)
        service.add_text(self._new_doc_text())
        reply = service.search_text(self._probe_text())
        assert reply.pairs
        # And the service's encode path kept the sentinel contract for
        # genuinely unknown tokens.
        probe = service.data.encode_query("stillunknown tokens here")
        assert set(probe.tokens) <= {OOV_TOKEN_ID, probe.tokens[0]}
        service.close()

    def test_typed_errors_stay_consistent_in_live_mode(self):
        from repro.errors import UnknownTokenError

        index = repro.Index.build(self._seed_texts(), PARAMS)
        index.add(self._new_doc_text())
        vocab = index.data.vocabulary
        assert vocab.id_of(self.NEW_WORDS[0]) >= 0
        with pytest.raises(UnknownTokenError):
            vocab.id_of("never-seen-token")
        with pytest.raises(UnknownTokenError):
            vocab.encode_frozen(["never-seen-token"])
        # encode_query never raises: sentinel only.
        assert tuple(index.encode_query("never-seen-token").tokens) == (-1,)
        index.close()
