"""Tests for passage merging and filtering."""

from __future__ import annotations

from repro import MatchPair, Passage, filter_passages, merge_passages


def pair(doc=0, d=0, q=0, overlap=10):
    return MatchPair(doc, d, q, overlap)


class TestMergePassages:
    def test_empty(self):
        assert merge_passages([], w=10) == []

    def test_single_pair(self):
        passages = merge_passages([pair(0, 5, 7)], w=10)
        assert passages == [
            Passage(
                doc_id=0,
                data_span=(5, 14),
                query_span=(7, 16),
                num_pairs=1,
                max_overlap=10,
            )
        ]

    def test_diagonal_run_merges(self):
        pairs = [pair(0, d=10 + i, q=20 + i) for i in range(30)]
        passages = merge_passages(pairs, w=10)
        assert len(passages) == 1
        passage = passages[0]
        assert passage.query_span == (20, 58)
        assert passage.data_span == (10, 48)
        assert passage.num_pairs == 30

    def test_distant_matches_stay_separate(self):
        pairs = [pair(0, d=0, q=0), pair(0, d=500, q=500)]
        passages = merge_passages(pairs, w=10)
        assert len(passages) == 2

    def test_different_documents_never_merge(self):
        pairs = [pair(0, 0, 0), pair(1, 0, 0)]
        passages = merge_passages(pairs, w=10)
        assert {p.doc_id for p in passages} == {0, 1}

    def test_different_diagonals_stay_separate(self):
        # Same query region matching two distant regions of one doc.
        pairs = [pair(0, d=0, q=0), pair(0, d=400, q=2)]
        passages = merge_passages(pairs, w=10)
        assert len(passages) == 2

    def test_diagonal_drift_tolerated(self):
        # Insertions shift the diagonal gradually; drift within the gap
        # keeps the passage whole.
        pairs = [pair(0, d=i + i // 10, q=i) for i in range(0, 40, 2)]
        passages = merge_passages(pairs, w=10, join_gap=8)
        assert len(passages) == 1

    def test_max_overlap_tracked(self):
        pairs = [pair(0, 0, 0, overlap=8), pair(0, 1, 1, overlap=10)]
        passages = merge_passages(pairs, w=10)
        assert passages[0].max_overlap == 10

    def test_default_join_gap_is_half_window(self):
        # Gap of w//2 - 1 merges; a much larger gap does not.
        near = [pair(0, 0, 0), pair(0, 13, 13)]
        far = [pair(0, 0, 0), pair(0, 40, 40)]
        assert len(merge_passages(near, w=10)) == 1  # windows touch (0-9, 13-22)?
        assert len(merge_passages(far, w=10)) == 2

    def test_passage_length(self):
        passage = Passage(0, (0, 9), (5, 24), 3, 10)
        assert passage.length == 20


class TestFilterPassages:
    def _passages(self):
        return [
            Passage(0, (0, 9), (0, 9), num_pairs=1, max_overlap=10),
            Passage(0, (0, 49), (0, 49), num_pairs=20, max_overlap=10),
        ]

    def test_min_pairs(self):
        kept = filter_passages(self._passages(), min_pairs=5)
        assert len(kept) == 1 and kept[0].num_pairs == 20

    def test_min_length(self):
        kept = filter_passages(self._passages(), min_length=30)
        assert len(kept) == 1 and kept[0].length == 50

    def test_no_filters_keeps_all(self):
        assert len(filter_passages(self._passages())) == 2
