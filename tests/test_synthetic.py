"""Tests for the synthetic corpus generator and dataset profiles."""

from __future__ import annotations

from collections import Counter

import pytest

from repro import CorpusError
from repro.corpus.synthetic import (
    DATASET_PROFILES,
    DatasetProfile,
    ReuseSpec,
    SyntheticCorpusGenerator,
    effective_universe_size,
    log_log_slope,
    make_profile_collection,
)
from repro.corpus.plagiarism import ObfuscationLevel


class TestProfiles:
    def test_table1_values_present(self):
        assert DATASET_PROFILES["REUTERS"].num_documents == 7_791
        assert DATASET_PROFILES["TREC"].avg_doc_length == pytest.approx(198.2)
        assert DATASET_PROFILES["PAN"].vocabulary_size == 1_846_623

    def test_scaled_counts(self):
        scaled = DATASET_PROFILES["REUTERS"].scaled(0.01)
        assert scaled.num_documents == 78
        assert scaled.num_queries == 10
        # Vocabulary scales by sqrt(scale) (Heaps' law).
        assert scaled.vocabulary_size == round(33_260 * 0.1)
        assert scaled.avg_doc_length == pytest.approx(237.2)  # unchanged

    def test_scaled_floor(self):
        scaled = DATASET_PROFILES["REUTERS"].scaled(1e-6)
        assert scaled.num_documents >= 2
        assert scaled.vocabulary_size >= 200

    def test_scale_must_be_positive(self):
        with pytest.raises(CorpusError):
            DATASET_PROFILES["REUTERS"].scaled(0)


class TestGenerator:
    def _profile(self, **overrides):
        defaults = dict(
            name="TINY",
            num_documents=20,
            num_queries=3,
            avg_doc_length=150,
            avg_query_length=120,
            vocabulary_size=500,
        )
        defaults.update(overrides)
        return DatasetProfile(**defaults)

    def test_deterministic(self):
        profile = self._profile()
        a = SyntheticCorpusGenerator(profile, seed=5).generate_data()
        b = SyntheticCorpusGenerator(profile, seed=5).generate_data()
        assert [d.tokens for d in a] == [d.tokens for d in b]

    def test_different_seeds_differ(self):
        profile = self._profile()
        a = SyntheticCorpusGenerator(profile, seed=1).generate_data()
        b = SyntheticCorpusGenerator(profile, seed=2).generate_data()
        assert [d.tokens for d in a] != [d.tokens for d in b]

    def test_document_count_and_min_length(self):
        profile = self._profile(min_doc_length=100)
        data = SyntheticCorpusGenerator(profile, seed=0).generate_data()
        assert len(data) == 20
        assert all(len(document) >= 100 for document in data)

    def test_token_ids_within_vocabulary(self):
        profile = self._profile()
        data = SyntheticCorpusGenerator(profile, seed=0).generate_data()
        assert effective_universe_size(data) <= profile.vocabulary_size
        for document in data:
            assert all(0 <= t < profile.vocabulary_size for t in document.tokens)

    def test_zipf_slope(self):
        # The head of the frequency distribution should follow the
        # configured power law within generous tolerance.
        profile = self._profile(
            num_documents=40, avg_doc_length=400, vocabulary_size=2000, zipf_s=1.1
        )
        data = SyntheticCorpusGenerator(profile, seed=3).generate_data()
        counter = Counter()
        for document in data:
            counter.update(document.tokens)
        top = [count for _token, count in counter.most_common(100)]
        slope = log_log_slope(top)
        assert -1.6 < slope < -0.6

    def test_queries_generated(self):
        profile = self._profile()
        queries = SyntheticCorpusGenerator(profile, seed=0).generate_queries()
        assert len(queries) == profile.num_queries

    def test_log_log_slope_needs_two_points(self):
        with pytest.raises(CorpusError):
            log_log_slope([5])


class TestMakeProfileCollection:
    def test_returns_consistent_workload(self):
        data, queries, truth = make_profile_collection("REUTERS", scale=0.002, seed=9)
        assert len(data) >= 2
        assert len(queries) >= 1
        # Default reuse: one case per query (when donors exist).
        assert len(truth) <= len(queries)
        for pair in truth:
            lo, hi = pair.query_span
            assert 0 <= lo <= hi < len(queries[pair.query_id])
            dlo, dhi = pair.data_span
            assert 0 <= dlo <= dhi < len(data[pair.data_doc_id])

    def test_unknown_profile(self):
        with pytest.raises(CorpusError):
            make_profile_collection("NOPE")

    def test_reuse_spec_levels_cycle(self):
        spec = ReuseSpec(levels=(ObfuscationLevel.NONE,), segment_length=50)
        _data, _queries, truth = make_profile_collection(
            "REUTERS", scale=0.002, seed=4, reuse=spec
        )
        assert all(pair.level is ObfuscationLevel.NONE for pair in truth)

    def test_injected_segment_matches_none_level(self):
        spec = ReuseSpec(levels=(ObfuscationLevel.NONE,), segment_length=40)
        data, queries, truth = make_profile_collection(
            "REUTERS", scale=0.002, seed=11, reuse=spec
        )
        for pair in truth:
            dlo, dhi = pair.data_span
            qlo, qhi = pair.query_span
            original = data[pair.data_doc_id].tokens[dlo : dhi + 1]
            copied = queries[pair.query_id].tokens[qlo : qhi + 1]
            assert tuple(copied) == tuple(original)  # NONE = verbatim copy

    def test_deterministic_workload(self):
        a = make_profile_collection("REUTERS", scale=0.002, seed=21)
        b = make_profile_collection("REUTERS", scale=0.002, seed=21)
        assert [d.tokens for d in a[0]] == [d.tokens for d in b[0]]
        assert [q.tokens for q in a[1]] == [q.tokens for q in b[1]]
        assert a[2] == b[2]
