"""Final edge-behavior batch: CLI filters, passage properties, stats."""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import MatchPair, filter_passages, merge_passages


class TestPassageProperties:
    @settings(max_examples=60, deadline=None)
    @given(seed=st.integers(0, 100_000))
    def test_every_match_covered_by_exactly_one_passage(self, seed):
        rng = random.Random(seed)
        w = rng.randint(3, 15)
        pairs = []
        for _ in range(rng.randint(0, 40)):
            doc = rng.randrange(3)
            q = rng.randrange(100)
            d = max(0, q + rng.randint(-5, 5))
            pairs.append(MatchPair(doc, d, q, w))
        passages = merge_passages(pairs, w)
        for pair in pairs:
            containing = [
                p
                for p in passages
                if p.doc_id == pair.doc_id
                and p.query_span[0] <= pair.query_start
                and pair.query_start + w - 1 <= p.query_span[1]
                and p.data_span[0] <= pair.data_start
                and pair.data_start + w - 1 <= p.data_span[1]
            ]
            assert containing, f"pair {pair} not covered"

    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(0, 100_000))
    def test_pair_counts_conserved(self, seed):
        rng = random.Random(seed)
        w = rng.randint(3, 10)
        pairs = [
            MatchPair(0, rng.randrange(50), rng.randrange(50), w)
            for _ in range(rng.randint(0, 30))
        ]
        passages = merge_passages(pairs, w)
        assert sum(p.num_pairs for p in passages) == len(pairs)

    def test_filter_composes(self):
        pairs = [MatchPair(0, i, i, 10) for i in range(20)]
        passages = merge_passages(pairs, 10)
        assert filter_passages(passages, min_pairs=21) == []
        assert filter_passages(passages, min_pairs=20) == passages


class TestCliFilters:
    def test_min_pairs_filters_weak_passages(self, tmp_path, capsys):
        import random as rnd

        from repro.cli import main

        rng = rnd.Random(2)
        vocab = [f"v{i}" for i in range(800)]
        directory = tmp_path / "corpus"
        directory.mkdir()
        base = [rng.choice(vocab) for _ in range(200)]
        (directory / "a.txt").write_text(" ".join(base))
        (directory / "b.txt").write_text(
            " ".join(rng.choice(vocab) for _ in range(200))
        )
        # Query: long copy of a (many pairs) — should survive min-pairs.
        query = tmp_path / "q.txt"
        query.write_text(" ".join(base[50:150]))
        index_path = tmp_path / "c.idx"
        main(["index", "--data", str(directory), "--out", str(index_path),
              "-w", "20", "--tau", "3"])
        rc_loose = main(
            ["search", "--index", str(index_path), "--query", str(query),
             "--min-pairs", "1"]
        )
        out_loose = capsys.readouterr().out
        rc_strict = main(
            ["search", "--index", str(index_path), "--query", str(query),
             "--min-pairs", "10000"]
        )
        out_strict = capsys.readouterr().out
        assert rc_loose == 0 and "a.txt" in out_loose
        assert rc_strict == 1 and "no reused passages" in out_strict


class TestAnalysisOnProfiles:
    def test_postings_singleton_heavy_for_tight_tau(self, small_corpus):
        from repro import PKWiseSearcher, SearchParams
        from repro.eval import postings_statistics

        tight = PKWiseSearcher(small_corpus, SearchParams(w=20, tau=1, k_max=2))
        loose = PKWiseSearcher(small_corpus, SearchParams(w=20, tau=5, k_max=2))
        tight_stats = postings_statistics(tight.index)
        loose_stats = postings_statistics(loose.index)
        # Looser constraints index more signatures overall.
        assert loose_stats.num_postings > tight_stats.num_postings
