"""Cross-module invariants of the whole search pipeline.

These properties hold for *any* valid configuration and are the
strongest correctness statements in the suite:

* **Scheme invariance** — the partition scheme is pure optimization;
  every valid scheme (any borders, any m) yields the identical result
  set (Theorems 1/2).
* **Threshold monotonicity** — loosening tau only adds results.
* **Context independence** — adding unrelated documents never changes
  the matches of existing ones.
* **Determinism** — the full pipeline is reproducible call-to-call.
"""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    ConfigurationError,
    GlobalOrder,
    PartitionScheme,
    PKWiseSearcher,
    SearchParams,
)

from .conftest import pairs_as_set, random_collection


def random_scheme(rng: random.Random, universe: int, m_max: int = 3):
    k_max = rng.randint(1, 4)
    borders = tuple(sorted(rng.randint(0, universe) for _ in range(k_max - 1)))
    m = rng.randint(1, m_max)
    return PartitionScheme(universe_size=universe, borders=borders, m=m)


class TestSchemeInvariance:
    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(0, 1_000_000))
    def test_any_scheme_same_results(self, seed):
        rng = random.Random(seed)
        data, query = random_collection(rng)
        w = rng.randint(4, 10)
        tau = rng.randint(0, min(3, w - 1))
        order = GlobalOrder(data, w)
        reference = None
        for _ in range(3):
            scheme = random_scheme(rng, order.universe_size)
            try:
                params = SearchParams(
                    w=w, tau=tau, k_max=scheme.k_max, m=scheme.m
                )
            except ConfigurationError:
                continue  # scheme too aggressive for this w
            searcher = PKWiseSearcher(data, params, scheme=scheme, order=order)
            got = pairs_as_set(searcher.search(query))
            if reference is None:
                reference = got
            else:
                assert got == reference, f"scheme {scheme} changed results"


class TestThresholdMonotonicity:
    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 1_000_000))
    def test_results_grow_with_tau(self, seed):
        rng = random.Random(seed)
        data, query = random_collection(rng)
        w = rng.randint(5, 10)
        order = GlobalOrder(data, w)
        previous_pairs = None
        for tau in range(0, min(4, w - 1)):
            params = SearchParams(w=w, tau=tau, k_max=2)
            searcher = PKWiseSearcher(data, params, order=order)
            got = {
                (p.doc_id, p.data_start, p.query_start)
                for p in searcher.search(query).pairs
            }
            if previous_pairs is not None:
                assert previous_pairs <= got
            previous_pairs = got


class TestContextIndependence:
    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 1_000_000))
    def test_adding_noise_documents_preserves_matches(self, seed):
        rng = random.Random(seed)
        data, query = random_collection(rng)
        w, tau = 6, 2
        params = SearchParams(w=w, tau=tau, k_max=2)
        baseline = pairs_as_set(PKWiseSearcher(data, params).search(query))
        num_original = len(data)
        # Add unrelated documents over a disjoint token namespace.
        for extra in range(2):
            data.add_tokens([f"noise{seed}_{extra}_{i}" for i in range(20)])
        extended = pairs_as_set(PKWiseSearcher(data, params).search(query))
        restricted = {t for t in extended if t[0] < num_original}
        assert restricted == baseline


class TestDeterminism:
    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 1_000_000))
    def test_pipeline_reproducible(self, seed):
        rng_a = random.Random(seed)
        rng_b = random.Random(seed)
        data_a, query_a = random_collection(rng_a)
        data_b, query_b = random_collection(rng_b)
        params = SearchParams(w=5, tau=1, k_max=2)
        result_a = PKWiseSearcher(data_a, params).search(query_a)
        result_b = PKWiseSearcher(data_b, params).search(query_b)
        assert result_a.sorted_pairs() == result_b.sorted_pairs()

    def test_stats_counters_are_deterministic(self):
        rng = random.Random(9)
        data, query = random_collection(rng)
        params = SearchParams(w=6, tau=2, k_max=3)
        searcher = PKWiseSearcher(data, params)
        first = searcher.search(query).stats
        second = searcher.search(query).stats
        assert first.signature_tokens == second.signature_tokens
        assert first.postings_entries == second.postings_entries
        assert first.hash_ops == second.hash_ops
        assert first.candidate_windows == second.candidate_windows


class TestResultSoundness:
    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 1_000_000))
    def test_every_result_satisfies_constraint(self, seed):
        from repro.windows import window_overlap

        rng = random.Random(seed)
        data, query = random_collection(rng)
        w = rng.randint(4, 9)
        tau = rng.randint(0, min(3, w - 1))
        try:
            params = SearchParams(w=w, tau=tau, k_max=2)
        except ConfigurationError:
            return  # drawn parameters violate the Theorem 2 bound
        searcher = PKWiseSearcher(data, params)
        for pair in searcher.search(query).pairs:
            data_window = data[pair.doc_id].tokens[
                pair.data_start : pair.data_start + w
            ]
            query_window = query.tokens[
                pair.query_start : pair.query_start + w
            ]
            overlap = window_overlap(data_window, query_window)
            assert overlap == pair.overlap
            assert w - overlap <= tau
