"""Fault-injection framework + parallel crash recovery.

Covers the :mod:`repro.faults` switchboard itself (spec validation,
deterministic firing, cross-process trigger ledger, plan transport) and
the :class:`~repro.parallel.ParallelExecutor` recovery machinery it
exists to exercise: chunk retries, bisection down to poison queries,
worker-kill pool restarts, and checkpoint/resume — always asserting the
surviving results stay byte-identical to a clean serial run.
"""

from __future__ import annotations

import multiprocessing
import random

import pytest

from repro import (
    DocumentCollection,
    FaultPlan,
    FaultSpec,
    ParallelExecutor,
    PKWiseSearcher,
    SearchParams,
    WorkerCrashError,
    faults,
    local_similarity_self_join,
)
from repro.errors import ConfigurationError, FaultInjectionError
from repro.eval.harness import serial_run
from repro.parallel.checkpoint import RunCheckpoint, workload_fingerprint
from repro.persistence import PersistenceError

HAVE_FORK = "fork" in multiprocessing.get_all_start_methods()
needs_fork = pytest.mark.skipif(not HAVE_FORK, reason="needs fork start method")


@pytest.fixture(autouse=True)
def _clean_plan():
    """No fault plan leaks into (or out of) any test."""
    faults.clear_plan()
    yield
    faults.clear_plan()


@pytest.fixture(scope="module")
def workload():
    """Searcher + queries with a matching clean serial baseline."""
    rng = random.Random(4242)
    vocab = [f"w{i}" for i in range(80)]
    data = DocumentCollection()
    for _ in range(9):
        data.add_tokens([vocab[rng.randrange(len(vocab))] for _ in range(110)])
    params = SearchParams(w=12, tau=3, k_max=2)
    searcher = PKWiseSearcher(data, params)
    queries = [data[i] for i in range(len(data))]
    return data, params, searcher, queries


def _executor(**kwargs) -> ParallelExecutor:
    kwargs.setdefault("jobs", 2)
    kwargs.setdefault("chunk_size", 2)
    kwargs.setdefault("retry_backoff", 0.0)
    return ParallelExecutor(**kwargs)


class TestFaultSpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown fault kind"):
            FaultSpec(point="p", kind="explode")

    def test_probability_out_of_range(self):
        with pytest.raises(ConfigurationError, match="probability"):
            FaultSpec(point="p", kind="raise", probability=1.5)

    def test_max_triggers_validated(self):
        with pytest.raises(ConfigurationError, match="max_triggers"):
            FaultSpec(point="p", kind="raise", max_triggers=0)

    def test_match_is_equality_on_context(self):
        spec = FaultSpec(point="p", kind="raise", match={"chunk_index": 2})
        assert spec.matches({"chunk_index": 2, "extra": "ignored"})
        assert not spec.matches({"chunk_index": 3})
        assert not spec.matches({})


class TestFaultPlan:
    def test_disabled_path_is_noop(self):
        # No plan installed: inject is a no-op, inject_bytes is identity.
        faults.inject("anything", key="value")
        data = b"payload"
        assert faults.inject_bytes("anything", data) is data

    def test_raise_carries_point(self):
        faults.install_plan(
            FaultPlan([FaultSpec(point="p", kind="raise", message="boom")])
        )
        with pytest.raises(FaultInjectionError, match="boom") as info:
            faults.inject("p")
        assert info.value.point == "p"

    def test_other_points_unaffected(self):
        faults.install_plan(FaultPlan([FaultSpec(point="p", kind="raise")]))
        faults.inject("q")  # no error

    def test_max_triggers_local(self):
        faults.install_plan(
            FaultPlan([FaultSpec(point="p", kind="raise", max_triggers=2)])
        )
        for _ in range(2):
            with pytest.raises(FaultInjectionError):
                faults.inject("p")
        faults.inject("p")  # exhausted

    def test_ledger_bounds_across_plan_instances(self, tmp_path):
        # Two plan objects sharing one ledger model two racing processes:
        # a single max_triggers=1 firing is claimed by exactly one.
        spec = FaultSpec(point="p", kind="raise", max_triggers=1)
        ledger = tmp_path / "ledger"
        first = FaultPlan([spec], ledger=ledger)
        second = FaultPlan([spec], ledger=ledger)
        with pytest.raises(FaultInjectionError):
            first.fire("p", {})
        second.fire("p", {})  # claim already taken — no error

    def test_probability_deterministic(self):
        plan_a = FaultPlan(
            [FaultSpec(point="p", kind="raise", probability=0.5)], seed=11
        )
        plan_b = FaultPlan(
            [FaultSpec(point="p", kind="raise", probability=0.5)], seed=11
        )

        def firing_pattern(plan):
            pattern = []
            for _ in range(20):
                try:
                    plan.fire("p", {})
                    pattern.append(False)
                except FaultInjectionError:
                    pattern.append(True)
            return pattern

        pattern = firing_pattern(plan_a)
        assert pattern == firing_pattern(plan_b)
        assert any(pattern) and not all(pattern)

    def test_corrupt_bytes_flips_exactly_one_byte(self):
        data = bytes(range(64))
        corrupted = faults.corrupt_bytes(data, seed=3, salt="x")
        assert corrupted != data
        assert len(corrupted) == len(data)
        assert sum(a != b for a, b in zip(data, corrupted)) == 1
        assert corrupted == faults.corrupt_bytes(data, seed=3, salt="x")

    def test_json_roundtrip(self, tmp_path):
        plan = FaultPlan(
            [
                FaultSpec(
                    point="p",
                    kind="delay",
                    match={"chunk_index": 1},
                    max_triggers=3,
                    probability=0.25,
                    delay_seconds=0.5,
                )
            ],
            seed=9,
            ledger=tmp_path / "ledger",
        )
        path = tmp_path / "plan.json"
        plan.to_json_file(path)
        loaded = FaultPlan.from_json_file(path)
        assert loaded.to_dict() == plan.to_dict()

    def test_env_var_activation(self, tmp_path, monkeypatch):
        path = tmp_path / "plan.json"
        FaultPlan([FaultSpec(point="p", kind="raise")]).to_json_file(path)
        monkeypatch.setenv(faults.PLAN_ENV_VAR, str(path))
        faults.clear_plan()  # re-arm the env check
        with pytest.raises(FaultInjectionError):
            faults.inject("p")

    def test_pickled_plan_resets_runtime_counters(self):
        import pickle

        plan = FaultPlan(
            [FaultSpec(point="p", kind="raise", max_triggers=1)]
        )
        with pytest.raises(FaultInjectionError):
            plan.fire("p", {})
        clone = pickle.loads(pickle.dumps(plan))
        with pytest.raises(FaultInjectionError):
            clone.fire("p", {})  # fresh process, fresh local claims


@needs_fork
class TestQuarantine:
    def test_poison_query_quarantined_survivors_exact(self, workload):
        _data, _params, searcher, queries = workload
        clean = serial_run(searcher, queries)
        faults.install_plan(
            FaultPlan(
                [
                    FaultSpec(
                        point="parallel.worker.query",
                        kind="raise",
                        match={"position": 6},
                        message="poison",
                    )
                ]
            )
        )
        run = _executor().run_workload(searcher, queries)
        assert len(run.failures) == 1
        failure = run.failures[0]
        assert failure.position == 6
        assert failure.error_type == "FaultInjectionError"
        assert "poison" in failure.error_message
        assert failure.attempts == 3  # 1 try + chunk_retries(2)
        assert run.recovery is not None
        assert run.recovery.chunk_bisections >= 1
        surviving = {
            key: value
            for key, value in clean.results_by_query.items()
            if key != 6
        }
        assert dict(run.results_by_query) == surviving
        snapshot = run.metrics_snapshot()
        assert snapshot["metrics"]["counters"]["run.quarantined_queries"] == 1

    def test_transient_fault_recovers_fully(self, workload, tmp_path):
        _data, _params, searcher, queries = workload
        clean = serial_run(searcher, queries)
        faults.install_plan(
            FaultPlan(
                [
                    FaultSpec(
                        point="parallel.worker.chunk",
                        kind="raise",
                        match={"kind": "search"},
                        max_triggers=1,
                    )
                ],
                ledger=tmp_path / "ledger",
            )
        )
        run = _executor().run_workload(searcher, queries)
        assert run.failures == []
        assert run.recovery.chunk_retries >= 1
        assert run.results_by_query == clean.results_by_query

    def test_clean_run_reports_no_recovery(self, workload):
        _data, _params, searcher, queries = workload
        run = _executor().run_workload(searcher, queries)
        assert run.failures == []
        assert run.recovery is not None and not run.recovery.any()
        counters = run.metrics_snapshot()["metrics"]["counters"]
        assert not any(key.startswith("run.recovery") for key in counters)
        assert "run.quarantined_queries" not in counters


class _InterruptingSearcher:
    """Raises KeyboardInterrupt on one query, as a Ctrl-C would."""

    def __init__(self, searcher, interrupt_doc_id: int) -> None:
        self._searcher = searcher
        self._interrupt_doc_id = interrupt_doc_id
        self.params = searcher.params

    def search(self, query):
        if query.doc_id == self._interrupt_doc_id:
            raise KeyboardInterrupt
        return self._searcher.search(query)


@needs_fork
class TestKeyboardInterrupt:
    def test_worker_interrupt_aborts_never_retries(self, workload, tmp_path):
        # Satellite: Ctrl-C must re-raise promptly (no retry cascade,
        # no hang on pool join), flushing the checkpoint on the way out.
        _data, _params, searcher, queries = workload
        wrapped = _InterruptingSearcher(searcher, interrupt_doc_id=4)
        checkpoint = tmp_path / "run.ckpt"
        executor = _executor()
        with pytest.raises(KeyboardInterrupt):
            executor.run_workload(wrapped, queries, checkpoint=checkpoint)
        assert checkpoint.exists()  # completed chunks were preserved


@needs_fork
class TestWorkerKill:
    def test_kill_recovers_and_results_exact(self, workload, tmp_path):
        _data, _params, searcher, queries = workload
        clean = serial_run(searcher, queries)
        faults.install_plan(
            FaultPlan(
                [
                    FaultSpec(
                        point="parallel.worker.query",
                        kind="kill",
                        match={"position": 3},
                        max_triggers=1,
                    )
                ],
                ledger=tmp_path / "ledger",
            )
        )
        run = _executor().run_workload(searcher, queries)
        assert run.failures == []
        assert run.recovery.pool_restarts >= 1
        assert run.results_by_query == clean.results_by_query
        # Exactness extends to the merged counters, not just the pairs.
        assert (
            run.stats.to_registry().snapshot()["counters"]
            == clean.stats.to_registry().snapshot()["counters"]
        )

    def test_kill_plus_poison_together(self, workload, tmp_path):
        _data, _params, searcher, queries = workload
        clean = serial_run(searcher, queries)
        faults.install_plan(
            FaultPlan(
                [
                    FaultSpec(
                        point="parallel.worker.query",
                        kind="kill",
                        match={"position": 3},
                        max_triggers=1,
                    ),
                    FaultSpec(
                        point="parallel.worker.query",
                        kind="raise",
                        match={"position": 6},
                    ),
                ],
                ledger=tmp_path / "ledger",
            )
        )
        run = _executor().run_workload(searcher, queries)
        assert [failure.position for failure in run.failures] == [6]
        assert run.recovery.pool_restarts >= 1
        surviving = {
            key: value
            for key, value in clean.results_by_query.items()
            if key != 6
        }
        assert dict(run.results_by_query) == surviving

    def test_persistent_killer_raises_worker_crash_error(
        self, workload, tmp_path
    ):
        _data, _params, searcher, queries = workload
        faults.install_plan(
            FaultPlan(
                [
                    FaultSpec(
                        point="parallel.worker.query",
                        kind="kill",
                        match={"position": 3},
                        max_triggers=1,
                    )
                ],
                ledger=tmp_path / "ledger",
            )
        )
        executor = _executor(max_pool_restarts=0)
        with pytest.raises(WorkerCrashError) as info:
            executor.run_workload(searcher, queries)
        assert info.value.restarts == 1


@needs_fork
class TestCheckpointResume:
    def test_workload_resume_matches_uninterrupted(self, workload, tmp_path):
        _data, _params, searcher, queries = workload
        clean = serial_run(searcher, queries)
        checkpoint = tmp_path / "run.ckpt"
        faults.install_plan(
            FaultPlan(
                [
                    FaultSpec(
                        point="parallel.worker.query",
                        kind="kill",
                        match={"position": 5},
                        max_triggers=1,
                    )
                ],
                ledger=tmp_path / "ledger",
            )
        )
        executor = _executor(max_pool_restarts=0)
        with pytest.raises(WorkerCrashError, match="resume=True"):
            executor.run_workload(searcher, queries, checkpoint=checkpoint)
        assert checkpoint.exists()
        faults.clear_plan()

        resumed = executor.run_workload(
            searcher, queries, checkpoint=checkpoint, resume=True
        )
        assert resumed.results_by_query == clean.results_by_query
        assert resumed.recovery.resumed_items > 0
        assert (
            resumed.stats.to_registry().snapshot()["counters"]
            == clean.stats.to_registry().snapshot()["counters"]
        )
        assert not checkpoint.exists()  # removed on success

    def test_selfjoin_resume_matches_uninterrupted(self, workload, tmp_path):
        data, params, _searcher, _queries = workload
        expected = local_similarity_self_join(data, params)
        checkpoint = tmp_path / "join.ckpt"
        faults.install_plan(
            FaultPlan(
                [
                    FaultSpec(
                        point="parallel.worker.document",
                        kind="kill",
                        match={"doc_id": 4},
                        max_triggers=1,
                    )
                ],
                ledger=tmp_path / "ledger",
            )
        )
        executor = _executor(max_pool_restarts=0)
        with pytest.raises(WorkerCrashError):
            executor.self_join(data, params, checkpoint=checkpoint)
        assert checkpoint.exists()
        faults.clear_plan()

        resumed = executor.self_join(
            data, params, checkpoint=checkpoint, resume=True
        )
        assert resumed == expected
        assert not checkpoint.exists()

    def test_checkpoint_works_at_jobs_1(self, workload, tmp_path):
        _data, _params, searcher, queries = workload
        clean = serial_run(searcher, queries)
        run = ParallelExecutor(jobs=1, chunk_size=2).run_workload(
            searcher, queries, checkpoint=tmp_path / "run.ckpt"
        )
        assert run.results_by_query == clean.results_by_query

    def test_fingerprint_mismatch_rejected(self, workload, tmp_path):
        _data, _params, searcher, queries = workload
        checkpoint = RunCheckpoint(
            tmp_path / "run.ckpt",
            "workload-checkpoint",
            workload_fingerprint(searcher, queries),
        )
        checkpoint.record([0], pid=1, elapsed=0.0, snapshot={}, rows=[])
        checkpoint.flush()
        with pytest.raises(PersistenceError, match="different run"):
            _executor().run_workload(
                searcher, queries[:-1], checkpoint=checkpoint.path, resume=True
            )

    def test_selfjoin_exact_or_error_on_poison(self, workload, tmp_path):
        data, params, _searcher, _queries = workload
        faults.install_plan(
            FaultPlan(
                [
                    FaultSpec(
                        point="parallel.worker.document",
                        kind="raise",
                        match={"doc_id": 4},
                    )
                ]
            )
        )
        with pytest.raises(FaultInjectionError):
            _executor().self_join(data, params)


class TestSpawnFailureParity:
    """Satellite: worker failure handling must match across start methods."""

    @pytest.mark.parametrize(
        "start_method",
        [
            pytest.param("fork", marks=needs_fork),
            "spawn",
        ],
    )
    def test_quarantine_report_identical(self, workload, start_method):
        _data, _params, searcher, queries = workload
        clean = serial_run(searcher, queries)
        faults.install_plan(
            FaultPlan(
                [
                    FaultSpec(
                        point="parallel.worker.query",
                        kind="raise",
                        match={"position": 2},
                        message="poison",
                    )
                ]
            )
        )
        run = _executor(start_method=start_method).run_workload(
            searcher, queries
        )
        report = [failure.to_dict() for failure in run.failures]
        assert report == [
            {
                "position": 2,
                "query_id": 2,
                "query_name": "doc2",
                "error_type": "FaultInjectionError",
                "error_message": (
                    "injected fault at 'parallel.worker.query' (poison)"
                ),
                "attempts": 3,
            }
        ]
        surviving = {
            key: value
            for key, value in clean.results_by_query.items()
            if key != 2
        }
        assert dict(run.results_by_query) == surviving
