"""End-to-end integration tests on synthetic profile workloads."""

from __future__ import annotations

import pytest

from repro import (
    GlobalOrder,
    PKWiseNonIntervalSearcher,
    PKWiseSearcher,
    SearchParams,
)
from repro.baselines import (
    AdaptSearcher,
    FaerieSearcher,
    FBWSearcher,
    StandardPrefixSearcher,
)
from repro.corpus.plagiarism import ObfuscationLevel
from repro.corpus.synthetic import ReuseSpec, make_profile_collection
from repro.eval import evaluate_quality, run_searcher

from .conftest import pairs_as_set


@pytest.fixture(scope="module")
def workload():
    data, queries, truth = make_profile_collection(
        "REUTERS",
        scale=0.003,
        seed=17,
        reuse=ReuseSpec(segment_length=80),
    )
    params = SearchParams(w=25, tau=5, k_max=3)
    order = GlobalOrder(data, params.w)
    return data, queries, truth, params, order


class TestExactAlgorithmsAgree:
    def test_all_exact_algorithms_same_results(self, workload):
        data, queries, _truth, params, order = workload
        searchers = [
            PKWiseSearcher(data, params, order=order),
            PKWiseNonIntervalSearcher(data, params, order=order),
            StandardPrefixSearcher(data, params.with_k_max(1), order=order),
            AdaptSearcher(data, params.with_k_max(1), order=order),
        ]
        for query in queries[:3]:
            reference = pairs_as_set(searchers[0].search(query))
            for searcher in searchers[1:]:
                assert pairs_as_set(searcher.search(query)) == reference

    def test_faerie_agrees_on_small_subset(self, workload):
        data, queries, _truth, params, order = workload
        small = data.subset(range(min(5, len(data))))
        small_order = GlobalOrder(small, params.w)
        pkwise = PKWiseSearcher(small, params, order=small_order)
        faerie = FaerieSearcher(small, params, order=small_order)
        query = queries[0]
        assert pairs_as_set(faerie.search(query)) == pairs_as_set(
            pkwise.search(query)
        )


class TestFindsInjectedReuse:
    def test_pkwise_recall_on_clean_copies(self):
        data, queries, truth = make_profile_collection(
            "REUTERS",
            scale=0.003,
            seed=23,
            reuse=ReuseSpec(
                levels=(ObfuscationLevel.NONE,), segment_length=80
            ),
        )
        params = SearchParams(w=25, tau=5, k_max=3)
        searcher = PKWiseSearcher(data, params)
        run = run_searcher(searcher, queries)
        report = evaluate_quality(run.results_by_query, truth, params.w)
        assert report.recall == 1.0  # verbatim copies are always found

    def test_recall_degrades_with_obfuscation_for_fbw(self):
        data, queries, truth = make_profile_collection(
            "REUTERS",
            scale=0.003,
            seed=29,
            reuse=ReuseSpec(segment_length=80),
        )
        params = SearchParams(w=25, tau=5, k_max=3)
        order = GlobalOrder(data, params.w)
        exact = run_searcher(PKWiseSearcher(data, params, order=order), queries)
        approx = run_searcher(
            FBWSearcher(data, params.with_k_max(1), order=order), queries
        )
        exact_report = evaluate_quality(exact.results_by_query, truth, params.w)
        approx_report = evaluate_quality(approx.results_by_query, truth, params.w)
        assert approx_report.recall <= exact_report.recall
        assert exact_report.recall > 0.5


class TestIndexShapes:
    def test_pkwise_index_smaller_than_adapt(self, workload):
        # Figure 7's shape: interval postings on prefixes are much
        # smaller than Adapt's per-window prefix entries.
        data, _queries, _truth, params, order = workload
        pkwise = PKWiseSearcher(data, params, order=order)
        adapt = AdaptSearcher(data, params.with_k_max(1), order=order)
        assert pkwise.index.size_in_entries() < adapt.index_entries

    def test_fbw_index_smallest(self, workload):
        data, _queries, _truth, params, order = workload
        pkwise = PKWiseSearcher(data, params, order=order)
        fbw = FBWSearcher(data, params.with_k_max(1), order=order)
        assert fbw.index_entries < pkwise.index.size_in_entries()


class TestScalabilityMechanics:
    def test_subset_scaling_preserves_results(self, workload):
        # Searching a 50% subset returns a subset of the full results
        # when using a shared order (Figure 9's mechanics).
        data, queries, _truth, params, order = workload
        half = data.subset(range(0, len(data), 2))
        full_searcher = PKWiseSearcher(data, params, order=order)
        half_order = GlobalOrder(half, params.w)
        half_searcher = PKWiseSearcher(half, params, order=half_order)
        query = queries[0]
        full = pairs_as_set(full_searcher.search(query))
        half_pairs = half_searcher.search(query).pairs
        # Map subset doc ids back to original ids (2 * id).
        remapped = {
            (2 * p.doc_id, p.data_start, p.query_start, p.overlap)
            for p in half_pairs
        }
        assert remapped <= full
