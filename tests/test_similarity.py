"""Tests for similarity-threshold conversions."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    ConfigurationError,
    jaccard_to_overlap,
    jaccard_to_tau,
    overlap_to_jaccard,
    tau_to_jaccard,
)
from repro.similarity import (
    cosine_to_overlap,
    dice_to_overlap,
    overlap_to_dice,
)


class TestJaccard:
    def test_known_values(self):
        # O = w (identical windows): J = w / w = 1.
        assert overlap_to_jaccard(10, 10) == 1.0
        # O = 0: J = 0.
        assert overlap_to_jaccard(10, 0) == 0.0
        # w=4, O=3 (the paper's Example 1): J = 3 / 5.
        assert overlap_to_jaccard(4, 3) == pytest.approx(0.6)

    def test_jaccard_to_overlap_inverts(self):
        # theta must be the smallest overlap achieving the threshold.
        for w in (4, 25, 100):
            for theta in range(1, w + 1):
                jaccard = overlap_to_jaccard(w, theta)
                assert jaccard_to_overlap(w, jaccard) == theta

    def test_tau_roundtrip(self):
        assert jaccard_to_tau(25, tau_to_jaccard(25, 5)) == 5

    @settings(max_examples=50, deadline=None)
    @given(w=st.integers(1, 200), data=st.data())
    def test_conversion_is_conservative(self, w, data):
        jaccard = data.draw(st.floats(0.01, 1.0))
        theta = jaccard_to_overlap(w, jaccard)
        # Windows meeting theta satisfy the Jaccard constraint ...
        assert overlap_to_jaccard(w, theta) >= jaccard - 1e-7
        # ... and theta-1 would not (unless theta = minimum).
        if theta > 1:
            assert overlap_to_jaccard(w, theta - 1) < jaccard

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            jaccard_to_overlap(0, 0.5)
        with pytest.raises(ConfigurationError):
            jaccard_to_overlap(10, 0.0)
        with pytest.raises(ConfigurationError):
            jaccard_to_overlap(10, 1.5)
        with pytest.raises(ConfigurationError):
            overlap_to_jaccard(10, 11)
        with pytest.raises(ConfigurationError):
            tau_to_jaccard(10, 10)


class TestDiceCosine:
    def test_dice_is_overlap_fraction(self):
        assert overlap_to_dice(10, 7) == pytest.approx(0.7)
        assert dice_to_overlap(10, 0.7) == 7
        assert dice_to_overlap(10, 0.71) == 8  # conservative ceiling

    def test_cosine_equals_dice_for_equal_sizes(self):
        for w in (5, 30):
            for value in (0.3, 0.65, 1.0):
                assert cosine_to_overlap(w, value) == dice_to_overlap(w, value)

    def test_bounds(self):
        assert dice_to_overlap(10, 1.0) == 10
        with pytest.raises(ConfigurationError):
            dice_to_overlap(10, 0.0)
