"""Remaining coverage: stats accounting, report formats, misc paths."""

from __future__ import annotations

import random

from repro import (
    DocumentCollection,
    GlobalOrder,
    PKWiseNonIntervalSearcher,
    PKWiseSearcher,
    SearchParams,
    SearchStats,
)
from repro.baselines import AdaptSearcher, FBWSearcher, StandardPrefixSearcher

from .conftest import pairs_as_set


class TestSearchStatsAccounting:
    def test_merge_accumulates_every_field(self):
        a = SearchStats(
            signature_time=1.0, candidate_time=2.0, verify_time=3.0,
            signature_tokens=4, signatures_generated=5, postings_entries=6,
            hash_ops=7, candidate_windows=8, num_results=9,
            shared_windows=10, changed_windows=11,
        )
        b = SearchStats(
            signature_time=0.5, candidate_time=0.5, verify_time=0.5,
            signature_tokens=1, signatures_generated=1, postings_entries=1,
            hash_ops=1, candidate_windows=1, num_results=1,
            shared_windows=1, changed_windows=1,
        )
        a.merge(b)
        assert a.signature_time == 1.5
        assert a.signature_tokens == 5
        assert a.num_results == 10
        assert a.changed_windows == 12
        assert a.total_time == 1.5 + 2.5 + 3.5

    def test_abstract_cost_default_weights(self):
        stats = SearchStats(signature_tokens=1, postings_entries=1, hash_ops=1)
        # Paper defaults: 10 + 2 + 1.
        assert stats.abstract_cost() == 13.0


class TestPhaseInstrumentation:
    def test_nonint_counts_per_window_generation(self, small_corpus):
        params = SearchParams(w=10, tau=2, k_max=2)
        order = GlobalOrder(small_corpus, 10)
        interval = PKWiseSearcher(small_corpus, params, order=order)
        nonint = PKWiseNonIntervalSearcher(small_corpus, params, order=order)
        query = small_corpus[3]
        shared = interval.search(query).stats
        unshared = nonint.search(query).stats
        # Without sharing, far more signatures are generated ...
        assert unshared.signatures_generated > shared.signatures_generated
        # ... and far more candidate windows are verified.
        assert unshared.candidate_windows > shared.candidate_windows

    def test_interval_sharing_fast_path_dominates(self, small_corpus):
        params = SearchParams(w=20, tau=2, k_max=2)
        searcher = PKWiseSearcher(small_corpus, params)
        stats = searcher.search(small_corpus[0]).stats
        assert stats.shared_windows > stats.changed_windows


class TestBaselineStats:
    def test_adapt_reports_postings_and_candidates(self, small_corpus):
        params = SearchParams(w=10, tau=2, k_max=1)
        adapt = AdaptSearcher(small_corpus, params)
        stats = adapt.search(small_corpus[2]).stats
        assert stats.postings_entries > 0
        assert stats.candidate_windows >= stats.num_results

    def test_fbw_reports_fingerprint_counts(self, small_corpus):
        params = SearchParams(w=10, tau=2, k_max=1)
        fbw = FBWSearcher(small_corpus, params)
        stats = fbw.search(small_corpus[2]).stats
        assert stats.signatures_generated > 0
        assert stats.signature_tokens == stats.signatures_generated * fbw.q


class TestSharedOrderConsistency:
    def test_algorithms_with_shared_order_vs_private_orders(self):
        # Searchers must produce identical results whether they share a
        # GlobalOrder instance or each build their own (same data).
        rng = random.Random(12)
        data = DocumentCollection()
        for _ in range(3):
            data.add_tokens([f"t{rng.randrange(40)}" for _ in range(60)])
        query = data.encode_query_tokens(
            [f"t{rng.randrange(40)}" for _ in range(40)]
        )
        params = SearchParams(w=10, tau=2, k_max=2)
        shared = GlobalOrder(data, 10)
        with_shared = PKWiseSearcher(data, params, order=shared).search(query)
        with_private = PKWiseSearcher(data, params).search(query)
        assert pairs_as_set(with_shared) == pairs_as_set(with_private)

    def test_baseline_and_core_share_rank_docs_shape(self, small_corpus):
        params = SearchParams(w=10, tau=1, k_max=1)
        order = GlobalOrder(small_corpus, 10)
        core = PKWiseSearcher(small_corpus, params, order=order)
        baseline = StandardPrefixSearcher(small_corpus, params, order=order)
        assert core.rank_docs == baseline.rank_docs


class TestDocumentDecoding:
    def test_match_decodes_to_text(self, paper_example):
        data, query, params = paper_example
        searcher = PKWiseSearcher(data, params)
        match = searcher.search(query).pairs[0]
        document = data[match.doc_id]
        window = data.vocabulary.decode(
            document.window(match.data_start, params.w)
        )
        assert window == ["the", "lord", "of", "the"]

    def test_query_window_decodes(self, paper_example):
        data, query, params = paper_example
        searcher = PKWiseSearcher(data, params)
        match = searcher.search(query).pairs[0]
        # decode_window prefers the query's source_tokens: OOV words
        # ("and" here) render faithfully, not as the sentinel.
        window = data.decode_window(query, match.query_start, params.w)
        assert window == ["the", "lord", "and", "the"]

    def test_query_window_vocab_decode_shows_sentinel(self, paper_example):
        from repro.tokenize import OOV_TOKEN

        data, query, params = paper_example
        searcher = PKWiseSearcher(data, params)
        match = searcher.search(query).pairs[0]
        window = data.vocabulary.decode(
            query.window(match.query_start, params.w)
        )
        assert window == ["the", "lord", OOV_TOKEN, "the"]
