"""Tests for incremental signature maintenance (Section 4.1).

The key property: replaying a :class:`SignatureStream`'s open/close
events reconstructs, for every window, exactly the signature set that
from-scratch generation (Algorithm 3) produces — the stream is an
extensionally faithful implementation of the paper's Algorithm 5.
"""

from __future__ import annotations

import random
from collections import Counter

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import PartitionScheme
from repro.signatures import SignatureStream, generate_signatures


def replay_presence(ranks, w, tau, scheme):
    """Replay stream events into per-window signature presence sets."""
    stream = SignatureStream(ranks, w, tau, scheme)
    present: set = set()
    by_window: list[set] = []
    final_seen = False
    for event in stream.events():
        if event.final:
            final_seen = True
            for signature in event.closed:
                present.discard(signature)
            break
        for signature in event.opened:
            assert signature not in present, "opened while already present"
            present.add(signature)
        for signature in event.closed:
            assert signature in present, "closed while absent"
            present.discard(signature)
        by_window.append(set(present))
    num_windows = max(0, len(ranks) - w + 1)
    if num_windows:
        assert final_seen
        assert not present, "final event must close everything"
    return by_window, stream


def scratch_presence(ranks, w, tau, scheme):
    """Reference: per-window signature sets generated from scratch."""
    out = []
    for start in range(max(0, len(ranks) - w + 1)):
        window = sorted(ranks[start : start + w])
        out.append(set(generate_signatures(window, tau, scheme)))
    return out


class TestPaperExample5:
    def test_prefix_maintenance_walkthrough(self):
        # Example 5: d = [E, G, A, F, C, B, D], w=4, tau=1, alphabetical
        # order, classes {A..D}=1, {E..G}=2.  Expected per-window
        # signatures: {A, EF}, {A, C}, {A, B}, {B, C}.
        E, G, A, F, C, B, D = 4, 6, 0, 5, 2, 1, 3
        ranks = [E, G, A, F, C, B, D]
        scheme = PartitionScheme(universe_size=7, borders=(4,))
        by_window, _stream = replay_presence(ranks, 4, 1, scheme)
        assert by_window == [
            {(A,), (E, F)},
            {(A,), (C,)},
            {(A,), (B,)},
            {(B,), (C,)},
        ]


class TestEquivalence:
    @settings(max_examples=80, deadline=None)
    @given(seed=st.integers(0, 1_000_000))
    def test_stream_matches_scratch(self, seed):
        rng = random.Random(seed)
        universe = rng.randint(3, 25)
        k_max = rng.randint(1, 4)
        borders = tuple(sorted(rng.randint(0, universe) for _ in range(k_max - 1)))
        m = rng.randint(1, 3)
        scheme = PartitionScheme(universe_size=universe, borders=borders, m=m)
        w = rng.randint(2, 10)
        tau = rng.randint(0, min(4, w - 1))
        length = rng.randint(0, 40)
        ranks = [rng.randrange(universe) for _ in range(length)]
        streamed, _ = replay_presence(ranks, w, tau, scheme)
        assert streamed == scratch_presence(ranks, w, tau, scheme)

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 1_000_000))
    def test_stream_with_duplicates_heavy(self, seed):
        # Tiny vocabularies force duplicate tokens (the gamma-counter
        # case of Section 4.1).
        rng = random.Random(seed)
        scheme = PartitionScheme(universe_size=3, borders=(1,))
        w = rng.randint(2, 6)
        tau = rng.randint(0, 2)
        ranks = [rng.randrange(3) for _ in range(rng.randint(0, 30))]
        streamed, _ = replay_presence(ranks, w, tau, scheme)
        assert streamed == scratch_presence(ranks, w, tau, scheme)


class TestSharingCounters:
    def test_constant_document_shares_everything(self):
        scheme = PartitionScheme.single(5)
        ranks = [1] * 30
        _, stream = replay_presence(ranks, 5, 1, scheme)
        assert stream.changed_windows == 1  # only the first window
        assert stream.shared_windows == 25

    def test_counters_sum_to_window_count(self):
        rng = random.Random(3)
        scheme = PartitionScheme(universe_size=10, borders=(5,))
        ranks = [rng.randrange(10) for _ in range(40)]
        _, stream = replay_presence(ranks, 6, 2, scheme)
        assert stream.changed_windows + stream.shared_windows == 40 - 6 + 1

    def test_token_cost_counts_constituents(self):
        # One window, prefix all class 2 with 3 tokens: 3 signatures of
        # size 2 -> token cost 6.
        scheme = PartitionScheme.all_k(5, 2)
        stream = SignatureStream([0, 1, 2, 3], 4, 1, scheme)
        list(stream.events())
        assert stream.generated_signatures == 3
        assert stream.generated_token_cost == 6


class TestShortDocuments:
    def test_no_windows_no_events(self):
        scheme = PartitionScheme.single(5)
        stream = SignatureStream([1, 2], 5, 1, scheme)
        assert list(stream.events()) == []

    def test_single_window_opens_and_finally_closes(self):
        scheme = PartitionScheme.single(5)
        stream = SignatureStream([0, 1, 2], 3, 1, scheme)
        events = list(stream.events())
        assert len(events) == 2
        first, final = events
        assert Counter(first.opened) == Counter({(0,): 1, (1,): 1})
        assert final.final
        assert set(final.closed) == {(0,), (1,)}
