"""Tests for all baseline algorithms (Section 7.1)."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import GlobalOrder, SearchParams
from repro.baselines import (
    AdaptSearcher,
    BruteForceSearcher,
    FaerieSearcher,
    FBWSearcher,
    KPrefixSearcher,
    StandardPrefixSearcher,
)
from repro.baselines.fbw import default_winnow_window

from .conftest import brute_force_pairs, pairs_as_set, random_collection

EXACT_BASELINES = [
    (BruteForceSearcher, {}),
    (StandardPrefixSearcher, {}),
    (KPrefixSearcher, {"k": 2}),
    (KPrefixSearcher, {"k": 3}),
    (AdaptSearcher, {}),
    (AdaptSearcher, {"k_limit": 1}),
    (FaerieSearcher, {}),
]


class TestExactness:
    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(0, 1_000_000))
    def test_all_exact_baselines_match_reference(self, seed):
        rng = random.Random(seed)
        data, query = random_collection(rng)
        w = rng.randint(3, 10)
        tau = rng.randint(0, min(3, w - 2))
        params = SearchParams(w=w, tau=tau, k_max=1)
        expected = brute_force_pairs(data, query, w, tau)
        order = GlobalOrder(data, w)
        for cls, kwargs in EXACT_BASELINES:
            try:
                searcher = cls(data, params, order=order, **kwargs)
            except ValueError:
                continue  # k too large for this (w, tau)
            got = pairs_as_set(searcher.search(query))
            assert got == expected, f"{cls.__name__}({kwargs}) diverged"

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 1_000_000))
    def test_fbw_returns_subset(self, seed):
        rng = random.Random(seed)
        data, query = random_collection(rng)
        w = rng.randint(4, 10)
        tau = rng.randint(0, min(2, w - 2))
        params = SearchParams(w=w, tau=tau, k_max=1)
        order = GlobalOrder(data, w)
        expected = brute_force_pairs(data, query, w, tau)
        fbw = FBWSearcher(data, params, order=order)
        assert pairs_as_set(fbw.search(query)) <= expected

    def test_fbw_finds_verbatim_copy(self):
        # A verbatim replication must be recoverable via fingerprints.
        from repro import DocumentCollection

        rng = random.Random(0)
        data = DocumentCollection()
        tokens = [f"t{rng.randrange(200)}" for _ in range(120)]
        data.add_tokens(tokens)
        # A second, unrelated document so frequencies are non-trivial.
        data.add_tokens([f"t{rng.randrange(200)}" for _ in range(120)])
        query = data.encode_query_tokens(tokens[20:80])
        params = SearchParams(w=20, tau=2, k_max=1)
        fbw = FBWSearcher(data, params)
        result = fbw.search(query)
        assert any(pair.overlap == 20 for pair in result.pairs)


class TestAdapt:
    def test_k_limit_clamped_to_window(self):
        from repro import DocumentCollection

        data = DocumentCollection()
        data.add_text("a b c d e")
        params = SearchParams(w=4, tau=2, k_max=1)
        adapt = AdaptSearcher(data, params, k_limit=10)
        assert adapt.k_limit == 2  # w - tau

    def test_rejects_bad_k_limit(self):
        from repro import DocumentCollection

        data = DocumentCollection()
        data.add_text("a b c")
        with pytest.raises(ValueError):
            AdaptSearcher(data, SearchParams(w=2, tau=0, k_max=1), k_limit=0)

    def test_index_entries_reported(self, small_corpus):
        params = SearchParams(w=10, tau=2, k_max=1)
        adapt = AdaptSearcher(small_corpus, params)
        # Every window indexes tau + k_limit = 5 prefix entries.
        expected = small_corpus.total_windows(10) * (params.tau + adapt.k_limit)
        assert adapt.index_entries == expected

    def test_adaptive_choice_reduces_candidates(self, small_corpus):
        # With selective extension available, Adapt should not verify
        # more candidates than the 1-prefix baseline.
        params = SearchParams(w=10, tau=3, k_max=1)
        order = GlobalOrder(small_corpus, 10)
        query = small_corpus[3]
        adapt = AdaptSearcher(small_corpus, params, order=order).search(query)
        standard = StandardPrefixSearcher(
            small_corpus, params, order=order
        ).search(query)
        assert adapt.stats.candidate_windows <= standard.stats.candidate_windows
        assert pairs_as_set(adapt) == pairs_as_set(standard)


class TestKPrefix:
    def test_rejects_prefix_longer_than_window(self):
        from repro import DocumentCollection

        data = DocumentCollection()
        data.add_text("a b c")
        with pytest.raises(ValueError):
            KPrefixSearcher(data, SearchParams(w=3, tau=2, k_max=1), k=2)

    def test_rejects_bad_k(self):
        from repro import DocumentCollection

        data = DocumentCollection()
        data.add_text("a b c")
        with pytest.raises(ValueError):
            KPrefixSearcher(data, SearchParams(w=3, tau=1, k_max=1), k=0)

    def test_larger_k_fewer_candidates(self, small_corpus):
        params = SearchParams(w=10, tau=3, k_max=1)
        order = GlobalOrder(small_corpus, 10)
        query = small_corpus[3]
        one = KPrefixSearcher(small_corpus, params, k=1, order=order).search(query)
        three = KPrefixSearcher(small_corpus, params, k=3, order=order).search(query)
        assert three.stats.candidate_windows <= one.stats.candidate_windows
        assert pairs_as_set(one) == pairs_as_set(three)


class TestFaerie:
    def test_index_entries(self):
        from repro import DocumentCollection

        data = DocumentCollection()
        data.add_text("a b a b")  # windows (a b a), (b a b): 2 distinct tokens each
        params = SearchParams(w=3, tau=1, k_max=1)
        faerie = FaerieSearcher(data, params)
        assert faerie.index_entries == 4

    def test_short_query(self, small_corpus):
        params = SearchParams(w=10, tau=1, k_max=1)
        faerie = FaerieSearcher(small_corpus, params)
        query = small_corpus.encode_query("tiny")
        assert faerie.search(query).pairs == []


class TestFBWConfig:
    def test_default_winnow_window(self):
        assert default_winnow_window(25, 2, 5) == 6
        assert default_winnow_window(100, 2, 5) == 24
        assert default_winnow_window(4, 2, 1) == 4  # floor

    def test_rejects_bad_q(self, small_corpus):
        with pytest.raises(ValueError):
            FBWSearcher(small_corpus, SearchParams(w=10, tau=1, k_max=1), q=0)

    def test_index_smaller_than_exact(self, small_corpus):
        params = SearchParams(w=10, tau=2, k_max=1)
        order = GlobalOrder(small_corpus, 10)
        fbw = FBWSearcher(small_corpus, params, order=order)
        adapt = AdaptSearcher(small_corpus, params, order=order)
        assert fbw.index_entries < adapt.index_entries


class TestSearchMany:
    def test_aggregates(self, small_corpus):
        params = SearchParams(w=10, tau=1, k_max=1)
        searcher = StandardPrefixSearcher(small_corpus, params)
        run = searcher.search_many([small_corpus[0], small_corpus[1]])
        assert run.num_queries == 2
        assert run.stats.num_results == sum(
            len(pairs) for pairs in run.results_by_query.values()
        )
