"""Tests for the plagiarism injector and ground-truth bookkeeping."""

from __future__ import annotations

import pytest

from repro import DocumentCollection
from repro.corpus.plagiarism import (
    GroundTruthPair,
    ObfuscationLevel,
    PlagiarismCase,
    PlagiarismInjector,
    shift_spans,
)


def make_data(num_docs=3, length=100):
    data = DocumentCollection()
    for d in range(num_docs):
        data.add_tokens([f"t{d}_{i}" for i in range(length)])
    return data


class TestObfuscate:
    def test_none_is_identity(self):
        injector = PlagiarismInjector(seed=0, vocabulary_size=100)
        tokens = list(range(50))
        assert injector.obfuscate(tokens, ObfuscationLevel.NONE) == tokens

    def test_low_changes_little(self):
        injector = PlagiarismInjector(seed=0, vocabulary_size=100)
        tokens = list(range(200))
        out = injector.obfuscate(tokens, ObfuscationLevel.LOW)
        shared = len(set(out) & set(tokens))
        assert shared > 150  # most tokens survive

    def test_simulated_changes_more_than_low(self):
        tokens = list(range(300))
        low = PlagiarismInjector(seed=1, vocabulary_size=10_000).obfuscate(
            list(tokens), ObfuscationLevel.LOW
        )
        simulated = PlagiarismInjector(seed=1, vocabulary_size=10_000).obfuscate(
            list(tokens), ObfuscationLevel.SIMULATED
        )
        assert len(set(simulated) & set(tokens)) < len(set(low) & set(tokens))

    def test_deterministic(self):
        a = PlagiarismInjector(seed=5, vocabulary_size=50).obfuscate(
            list(range(100)), ObfuscationLevel.HIGH
        )
        b = PlagiarismInjector(seed=5, vocabulary_size=50).obfuscate(
            list(range(100)), ObfuscationLevel.HIGH
        )
        assert a == b

    def test_rejects_empty_vocabulary(self):
        with pytest.raises(Exception):
            PlagiarismInjector(seed=0, vocabulary_size=0)


class TestSpliceCase:
    def test_splice_records_exact_span(self):
        data = make_data()
        injector = PlagiarismInjector(seed=2, vocabulary_size=len(data.vocabulary))
        query = list(range(1000, 1030))
        new_tokens, truth = injector.splice_case(
            data, query_id=0, query_tokens=query, segment_length=20,
            level=ObfuscationLevel.NONE,
        )
        assert truth is not None
        qlo, qhi = truth.query_span
        dlo, dhi = truth.data_span
        copied = new_tokens[qlo : qhi + 1]
        original = list(data[truth.data_doc_id].tokens[dlo : dhi + 1])
        assert copied == original
        assert len(new_tokens) == len(query) + 20

    def test_splice_no_donor(self):
        data = make_data(num_docs=1, length=5)
        injector = PlagiarismInjector(seed=0, vocabulary_size=len(data.vocabulary))
        tokens, truth = injector.splice_case(
            data, 0, [1, 2, 3], segment_length=50, level=ObfuscationLevel.NONE
        )
        assert truth is None
        assert tokens == [1, 2, 3]

    def test_levels_recorded(self):
        data = make_data()
        injector = PlagiarismInjector(seed=3, vocabulary_size=len(data.vocabulary))
        _tokens, truth = injector.splice_case(
            data, 7, list(range(40)), segment_length=10,
            level=ObfuscationLevel.HIGH,
        )
        assert truth.level is ObfuscationLevel.HIGH
        assert truth.query_id == 7


class TestInjectAll:
    def test_explicit_cases(self):
        data = make_data()
        injector = PlagiarismInjector(seed=0, vocabulary_size=len(data.vocabulary))
        cases = [
            PlagiarismCase(0, 10, 20, ObfuscationLevel.NONE),
            PlagiarismCase(1, 0, 15, ObfuscationLevel.NONE),
        ]
        queries, truths = injector.inject_all(data, [list(range(30))], cases)
        assert len(truths) == 2
        # After both insertions, every recorded span is verbatim.
        for truth in truths:
            qlo, qhi = truth.query_span
            dlo, dhi = truth.data_span
            assert queries[truth.query_id][qlo : qhi + 1] == list(
                data[truth.data_doc_id].tokens[dlo : dhi + 1]
            )

    def test_out_of_range_case(self):
        data = make_data(length=10)
        injector = PlagiarismInjector(seed=0, vocabulary_size=len(data.vocabulary))
        with pytest.raises(Exception):
            injector.inject_all(
                data,
                [[1, 2]],
                [PlagiarismCase(0, 5, 20, ObfuscationLevel.NONE)],
            )

    def test_requires_queries(self):
        data = make_data()
        injector = PlagiarismInjector(seed=0, vocabulary_size=10)
        with pytest.raises(Exception):
            injector.inject_all(data, [], [])


class TestShiftSpans:
    def _truth(self, span, query_id=0):
        return GroundTruthPair(
            data_doc_id=0,
            data_span=(0, 9),
            query_id=query_id,
            query_span=span,
            level=ObfuscationLevel.NONE,
        )

    def test_insert_before_shifts(self):
        out = shift_spans([self._truth((10, 19))], 0, insert_at=5, inserted_length=3)
        assert out[0].query_span == (13, 22)

    def test_insert_after_no_shift(self):
        out = shift_spans([self._truth((10, 19))], 0, insert_at=25, inserted_length=3)
        assert out[0].query_span == (10, 19)

    def test_insert_inside_stretches(self):
        out = shift_spans([self._truth((10, 19))], 0, insert_at=15, inserted_length=3)
        assert out[0].query_span == (10, 22)

    def test_other_query_untouched(self):
        out = shift_spans([self._truth((10, 19), query_id=1)], 0, 0, 100)
        assert out[0].query_span == (10, 19)


class TestGroundTruthPair:
    def test_overlap_predicates(self):
        truth = GroundTruthPair(0, (10, 20), 0, (30, 40), ObfuscationLevel.NONE)
        assert truth.data_overlaps(window_start=15, w=5)
        assert truth.data_overlaps(window_start=5, w=6)  # touches at 10
        assert not truth.data_overlaps(window_start=21, w=5)
        assert truth.query_overlaps(window_start=36, w=5)
        assert not truth.query_overlaps(window_start=41, w=5)
