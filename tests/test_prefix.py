"""Tests for prefix length (Algorithm 1), coverage, and weighted prefix."""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import PartitionScheme
from repro.params import max_prefix_length
from repro.signatures import coverage_of, prefix_length, weighted_prefix_length


class TestPaperExamples:
    def test_example4_prefix_length_is_9(self):
        # Example 4: tau=3, k_max=4; the window has 1 class-1 token,
        # 3 class-2 tokens, 1 class-3 token, then class-4 tokens.
        # Coverage 1 + 2 + 0 = 3 after five tokens; four class-4 tokens
        # are needed to reach tau + 1 = 4, giving prefix length 9.
        scheme = PartitionScheme(universe_size=30, borders=(1, 4, 5))
        window = [0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12]
        assert prefix_length(window, tau=3, scheme=scheme) == 9

    def test_k_max_1_gives_tau_plus_1(self):
        # With a single class the prefix is exactly tau + 1 (Lemma 1).
        scheme = PartitionScheme.single(100)
        window = list(range(20))
        for tau in range(6):
            assert prefix_length(window, tau, scheme) == tau + 1

    def test_lemma3_coverage(self):
        scheme = PartitionScheme(universe_size=10, borders=(5,))
        # 4 tokens of class 2: coverage 4 - 2 + 1 = 3.
        assert coverage_of([5, 6, 7, 8], scheme) == 3
        # 1 token of class 2: below i, coverage 0.
        assert coverage_of([5], scheme) == 0
        # Mixed (Lemma 4): 2 class-1 + 3 class-2 = 2 + 2.
        assert coverage_of([0, 1, 5, 6, 7], scheme) == 4


class TestProperties:
    def _random_scheme(self, rng, universe):
        k_max = rng.randint(1, 4)
        borders = tuple(sorted(rng.randint(0, universe) for _ in range(k_max - 1)))
        m = rng.randint(1, 3)
        return PartitionScheme(universe_size=universe, borders=borders, m=m)

    @settings(max_examples=80, deadline=None)
    @given(seed=st.integers(0, 100_000))
    def test_prefix_reaches_exactly_tau_plus_1_coverage(self, seed):
        rng = random.Random(seed)
        universe = rng.randint(5, 50)
        scheme = self._random_scheme(rng, universe)
        tau = rng.randint(0, 5)
        window = sorted(rng.randrange(universe) for _ in range(rng.randint(1, 40)))
        length = prefix_length(window, tau, scheme)
        if length < len(window):
            assert coverage_of(window[:length], scheme) == tau + 1
            # Minimality: one token fewer cannot reach tau + 1.
            assert coverage_of(window[: length - 1], scheme) <= tau
        else:
            assert coverage_of(window, scheme) <= tau + 1

    @settings(max_examples=60, deadline=None)
    @given(seed=st.integers(0, 100_000))
    def test_corollary1_upper_bound(self, seed):
        rng = random.Random(seed)
        universe = rng.randint(5, 60)
        scheme = self._random_scheme(rng, universe)
        tau = rng.randint(0, 5)
        bound = max_prefix_length(tau, scheme.k_max, scheme.m)
        # A long window always reaches the coverage within the bound.
        window = sorted(rng.randrange(universe) for _ in range(bound + 30))
        assert prefix_length(window, tau, scheme) <= bound

    def test_negative_ranks_class1(self):
        scheme = PartitionScheme(universe_size=10, borders=(0,))
        # Query-only tokens (negative ranks) are class 1: single-token
        # coverage, one each.
        assert prefix_length([-3, -2, -1, 0, 1], tau=1, scheme=scheme) == 2


class TestWeightedPrefix:
    def test_uniform_weights_match_unweighted(self):
        scheme = PartitionScheme(universe_size=20, borders=(10,))
        window = sorted([0, 1, 5, 11, 12, 13, 14, 15])
        tau = 2
        unweighted = prefix_length(window, tau, scheme)
        # Budget tau (strictly exceeded at tau + 1) with unit weights.
        weighted = weighted_prefix_length(window, lambda _r: 1.0, float(tau), scheme)
        assert weighted == unweighted

    def test_weighted_coverage_uses_smallest_weights(self):
        scheme = PartitionScheme(universe_size=10, borders=(0,))  # all class 2
        weights = {0: 1.0, 1: 1.0, 2: 10.0}
        # Class-2 group [0,1,2]: coverage = sum of (3-2+1)=2 smallest = 2.0.
        # Budget 1.5 is exceeded at the third token, not before.
        length = weighted_prefix_length(
            [0, 1, 2, 3], weights.get, 1.5, scheme
        )
        assert length == 3

    def test_budget_never_exceeded_returns_window_length(self):
        scheme = PartitionScheme(universe_size=10, borders=())
        window = [0, 1, 2]
        assert weighted_prefix_length(window, lambda _r: 0.5, 100.0, scheme) == 3
