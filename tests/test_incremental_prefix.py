"""Tests for the incremental prefix-length maintainer (Algorithm 5 core)."""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import PartitionScheme
from repro.signatures import (
    IncrementalPrefixLength,
    SignatureStream,
    prefix_length,
)


def random_setup(rng: random.Random):
    universe = rng.randint(3, 25)
    k_max = rng.randint(1, 4)
    borders = tuple(sorted(rng.randint(0, universe) for _ in range(k_max - 1)))
    m = rng.randint(1, 3)
    scheme = PartitionScheme(universe_size=universe, borders=borders, m=m)
    w = rng.randint(2, 10)
    tau = rng.randint(0, min(4, w - 1))
    length = rng.randint(w, 40)
    ranks = [rng.randrange(universe) for _ in range(length)]
    return scheme, w, tau, ranks


class TestAgainstRescan:
    @settings(max_examples=100, deadline=None)
    @given(seed=st.integers(0, 10_000_000))
    def test_length_matches_scratch_after_every_slide(self, seed):
        rng = random.Random(seed)
        scheme, w, tau, ranks = random_setup(rng)
        maintainer = IncrementalPrefixLength(ranks[:w], tau, scheme)
        assert maintainer.length == prefix_length(
            sorted(ranks[:w]), tau, scheme
        )
        for start in range(1, len(ranks) - w + 1):
            maintainer.slide(ranks[start - 1], ranks[start + w - 1])
            assert maintainer.multiset.as_list() == sorted(
                ranks[start : start + w]
            )
            assert maintainer.length == prefix_length(
                maintainer.multiset.raw, tau, scheme
            )

    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(0, 10_000_000))
    def test_coverage_invariant(self, seed):
        # Coverage is tau + 1 when reachable, else the window total.
        rng = random.Random(seed)
        scheme, w, tau, ranks = random_setup(rng)
        maintainer = IncrementalPrefixLength(ranks[:w], tau, scheme)
        for start in range(1, len(ranks) - w + 1):
            maintainer.slide(ranks[start - 1], ranks[start + w - 1])
            if maintainer.length < w:
                assert maintainer.coverage == tau + 1
            else:
                assert maintainer.coverage <= tau + 1


class TestStreamEngines:
    @settings(max_examples=50, deadline=None)
    @given(seed=st.integers(0, 10_000_000))
    def test_incremental_and_rescan_streams_identical(self, seed):
        rng = random.Random(seed)
        scheme, w, tau, ranks = random_setup(rng)
        incremental = SignatureStream(ranks, w, tau, scheme, incremental=True)
        rescan = SignatureStream(ranks, w, tau, scheme, incremental=False)
        events_a = list(incremental.events())
        events_b = list(rescan.events())
        assert len(events_a) == len(events_b)
        for a, b in zip(events_a, events_b):
            assert a.start == b.start
            assert sorted(a.opened) == sorted(b.opened)
            assert sorted(a.closed) == sorted(b.closed)
            assert a.final == b.final


class TestEdgeCases:
    def test_identity_slide_is_noop(self):
        scheme = PartitionScheme.single(5)
        maintainer = IncrementalPrefixLength([1, 2, 3], 1, scheme)
        before = maintainer.length
        maintainer.slide(2, 2)
        assert maintainer.length == before
        assert maintainer.multiset.as_list() == [1, 2, 3]

    def test_single_token_window(self):
        scheme = PartitionScheme.single(5)
        maintainer = IncrementalPrefixLength([3], 0, scheme)
        assert maintainer.length == 1
        maintainer.slide(3, 1)
        assert maintainer.multiset.as_list() == [1]
        assert maintainer.length == 1

    def test_prefix_returns_head(self):
        scheme = PartitionScheme.single(10)
        maintainer = IncrementalPrefixLength([5, 1, 9, 3], 1, scheme)
        assert maintainer.prefix() == [1, 3]

    def test_negative_ranks(self):
        # Query-only tokens (negative ranks) are class 1.
        scheme = PartitionScheme(universe_size=6, borders=(0,))
        maintainer = IncrementalPrefixLength([-2, -1, 4, 5], 1, scheme)
        assert maintainer.length == prefix_length([-2, -1, 4, 5], 1, scheme)
        maintainer.slide(-2, -3)
        assert maintainer.length == prefix_length(
            maintainer.multiset.raw, 1, scheme
        )
