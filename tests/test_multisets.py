"""Property tests for SortedMultiset and TreapMultiset.

Both structures implement the same interface; a single hypothesis suite
drives them against a naive sorted-list model.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.windows import SortedMultiset, TreapMultiset

STRUCTURES = [SortedMultiset, TreapMultiset]

# Operations: ("add", v) or ("discard", v).
operations = st.lists(
    st.tuples(st.sampled_from(["add", "discard"]), st.integers(-20, 20)),
    max_size=120,
)


@pytest.mark.parametrize("cls", STRUCTURES)
class TestAgainstModel:
    @settings(max_examples=60, deadline=None)
    @given(ops=operations)
    def test_matches_sorted_list_model(self, cls, ops):
        structure = cls()
        model: list[int] = []
        for op, value in ops:
            if op == "add":
                structure.add(value)
                model.append(value)
                model.sort()
            else:
                removed = structure.discard(value)
                assert removed == (value in model)
                if removed:
                    model.remove(value)
            assert len(structure) == len(model)
            assert structure.as_list() == model

    @settings(max_examples=40, deadline=None)
    @given(items=st.lists(st.integers(-50, 50), max_size=80))
    def test_positional_access(self, cls, items):
        structure = cls(items)
        expected = sorted(items)
        for index in range(len(expected)):
            assert structure[index] == expected[index]
        assert structure.prefix(5) == expected[:5]
        assert structure.prefix(1000) == expected

    @settings(max_examples=40, deadline=None)
    @given(items=st.lists(st.integers(-10, 10), max_size=60), probe=st.integers(-12, 12))
    def test_count_rank_contains(self, cls, items, probe):
        structure = cls(items)
        expected = sorted(items)
        assert structure.count(probe) == expected.count(probe)
        assert structure.rank(probe) == sum(1 for x in expected if x < probe)
        assert (probe in structure) == (probe in expected)


@pytest.mark.parametrize("cls", STRUCTURES)
class TestEdgeCases:
    def test_remove_missing_raises(self, cls):
        structure = cls([1, 2])
        with pytest.raises(KeyError):
            structure.remove(3)

    def test_remove_one_of_duplicates(self, cls):
        structure = cls([5, 5, 5])
        structure.remove(5)
        assert structure.count(5) == 2
        assert len(structure) == 2

    def test_empty(self, cls):
        structure = cls()
        assert len(structure) == 0
        assert structure.as_list() == []
        assert not structure.discard(1)

    def test_iteration_sorted(self, cls):
        structure = cls([3, 1, 2, 1])
        assert list(structure) == [1, 1, 2, 3]


class TestSortedMultisetSpecifics:
    def test_index_of_first(self):
        multiset = SortedMultiset([1, 2, 2, 3])
        assert multiset.index_of_first(2) == 1
        with pytest.raises(KeyError):
            multiset.index_of_first(9)

    def test_raw_is_internal(self):
        multiset = SortedMultiset([2, 1])
        assert multiset.raw == [1, 2]

    def test_getitem_slice(self):
        multiset = SortedMultiset([4, 3, 2, 1])
        assert multiset[1:3] == [2, 3]

    def test_equality(self):
        assert SortedMultiset([1, 2]) == SortedMultiset([2, 1])
        assert SortedMultiset([1]) != SortedMultiset([2])

    def test_repr_preview(self):
        assert "len=12" in repr(SortedMultiset(range(12)))


class TestTreapSpecifics:
    def test_negative_index(self):
        treap = TreapMultiset([1, 2, 3])
        assert treap[-1] == 3

    def test_index_out_of_range(self):
        treap = TreapMultiset([1])
        with pytest.raises(IndexError):
            treap[5]

    def test_slice_access(self):
        treap = TreapMultiset([5, 3, 1])
        assert treap[0:2] == [1, 3]

    def test_deterministic_for_seed(self):
        a = TreapMultiset(range(100), seed=7)
        b = TreapMultiset(range(100), seed=7)
        assert a.as_list() == b.as_list()

    def test_large_balanced(self):
        # Sanity: 5000 sequential inserts/lookups stay fast (treap stays
        # roughly balanced under its deterministic priorities).
        treap = TreapMultiset(range(5000))
        assert treap.rank(2500) == 2500
        assert treap[4999] == 4999
