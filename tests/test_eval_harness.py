"""Tests for the workload runner and report printers."""

from __future__ import annotations

from repro import PKWiseSearcher, SearchParams
from repro.eval import format_seconds, print_table, run_searcher


class TestRunSearcher:
    def test_aggregates(self, small_corpus):
        params = SearchParams(w=10, tau=2, k_max=2)
        searcher = PKWiseSearcher(small_corpus, params)
        queries = [small_corpus[0], small_corpus[3]]
        run = run_searcher(searcher, queries)
        assert run.num_queries == 2
        assert run.total_seconds > 0
        assert run.avg_query_seconds == run.total_seconds / 2
        assert run.name == "pkwise"
        assert set(run.results_by_query) == {0, 3}
        assert run.num_results == sum(
            len(pairs) for pairs in run.results_by_query.values()
        )

    def test_custom_name(self, small_corpus):
        params = SearchParams(w=10, tau=1, k_max=1)
        searcher = PKWiseSearcher(small_corpus, params)
        run = run_searcher(searcher, [small_corpus[0]], name="custom")
        assert run.name == "custom"

    def test_query_id_fallback_for_anonymous_queries(self, small_corpus):
        params = SearchParams(w=10, tau=1, k_max=1)
        searcher = PKWiseSearcher(small_corpus, params)
        query = small_corpus.encode_query(" ".join(["tok"] * 15))
        run = run_searcher(searcher, [query])
        assert set(run.results_by_query) == {0}  # doc_id -1 -> index

    def test_phase_row_mentions_phases(self, small_corpus):
        params = SearchParams(w=10, tau=1, k_max=2)
        searcher = PKWiseSearcher(small_corpus, params)
        run = run_searcher(searcher, [small_corpus[0]])
        row = run.phase_row()
        assert "sig=" in row and "cand=" in row and "verify=" in row

    def test_empty_workload(self, small_corpus):
        params = SearchParams(w=10, tau=1, k_max=1)
        searcher = PKWiseSearcher(small_corpus, params)
        run = run_searcher(searcher, [])
        assert run.avg_query_seconds == 0.0


class TestReport:
    def test_format_seconds_scales(self):
        assert format_seconds(5e-7).endswith("us")
        assert format_seconds(5e-3).endswith("ms")
        assert format_seconds(2.0).endswith("s")

    def test_print_table(self, capsys):
        print_table(
            "Table X: demo",
            ["col_a", "col_b"],
            [["1", "2"], ["333333333333", "4"]],
        )
        out = capsys.readouterr().out
        assert "Table X: demo" in out
        assert "col_a" in out
        assert "333333333333" in out
