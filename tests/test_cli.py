"""Tests for the command-line interface."""

from __future__ import annotations

import random

import pytest

from repro.cli import main


@pytest.fixture
def corpus_dir(tmp_path):
    rng = random.Random(9)
    vocab = [f"word{i}" for i in range(600)]
    directory = tmp_path / "corpus"
    directory.mkdir()
    docs = []
    for index in range(5):
        tokens = [rng.choice(vocab) for _ in range(250)]
        docs.append(tokens)
        (directory / f"doc{index}.txt").write_text(" ".join(tokens))
    # doc5 shares a 90-token passage with doc0.
    shared = docs[0][40:130]
    extra = [rng.choice(vocab) for _ in range(80)] + shared + [
        rng.choice(vocab) for _ in range(80)
    ]
    (directory / "doc5.txt").write_text(" ".join(extra))
    # A query file reusing doc1.
    query_tokens = (
        [rng.choice(vocab) for _ in range(60)]
        + docs[1][10:110]
        + [rng.choice(vocab) for _ in range(60)]
    )
    query_path = tmp_path / "query.txt"
    query_path.write_text(" ".join(query_tokens))
    return directory, query_path


class TestIndexAndSearch:
    def test_roundtrip(self, corpus_dir, tmp_path, capsys):
        directory, query_path = corpus_dir
        index_path = tmp_path / "corpus.idx"
        rc = main(
            [
                "index", "--data", str(directory), "--out", str(index_path),
                "-w", "20", "--tau", "4",
            ]
        )
        assert rc == 0
        assert index_path.exists()

        rc = main(
            ["search", "--index", str(index_path), "--query", str(query_path)]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "doc1.txt" in out

    def test_search_show_text(self, corpus_dir, tmp_path, capsys):
        directory, query_path = corpus_dir
        index_path = tmp_path / "corpus.idx"
        main(["index", "--data", str(directory), "--out", str(index_path),
              "-w", "20", "--tau", "4"])
        rc = main(
            ["search", "--index", str(index_path), "--query", str(query_path),
             "--show-text"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "word" in out  # snippet printed

    def test_search_no_matches_returns_1(self, corpus_dir, tmp_path, capsys):
        directory, _query_path = corpus_dir
        index_path = tmp_path / "corpus.idx"
        main(["index", "--data", str(directory), "--out", str(index_path),
              "-w", "20", "--tau", "4"])
        fresh = tmp_path / "fresh.txt"
        fresh.write_text(" ".join(f"novel{i}" for i in range(100)))
        rc = main(["search", "--index", str(index_path), "--query", str(fresh)])
        assert rc == 1

    def test_greedy_partition_flag(self, corpus_dir, tmp_path):
        directory, _query = corpus_dir
        index_path = tmp_path / "greedy.idx"
        rc = main(
            ["index", "--data", str(directory), "--out", str(index_path),
             "-w", "20", "--tau", "3", "--greedy-partition",
             "--sample-ratio", "0.3"]
        )
        assert rc == 0


class TestSelfJoin:
    def test_finds_shared_passage(self, corpus_dir, capsys):
        directory, _query = corpus_dir
        rc = main(["selfjoin", "--data", str(directory), "-w", "20", "--tau", "4"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "doc0.txt ~ doc5.txt" in out

    def test_no_replication(self, tmp_path, capsys):
        directory = tmp_path / "unique"
        directory.mkdir()
        for index in range(3):
            (directory / f"u{index}.txt").write_text(
                " ".join(f"tok{index}_{i}" for i in range(100))
            )
        rc = main(["selfjoin", "--data", str(directory), "-w", "10", "--tau", "2"])
        assert rc == 1


class TestErrors:
    def test_search_missing_index(self, tmp_path, capsys):
        rc = main(
            ["search", "--index", str(tmp_path / "nope.idx"),
             "--query", str(tmp_path / "nope.txt")]
        )
        assert rc == 2
        assert "error:" in capsys.readouterr().err

    def test_index_missing_directory(self, tmp_path):
        rc = main(
            ["index", "--data", str(tmp_path / "missing"),
             "--out", str(tmp_path / "o.idx")]
        )
        assert rc == 2
