"""Tests for SearchParams validation (Theorem 2 bound, theta, copies)."""

from __future__ import annotations

import pytest

from repro import ConfigurationError, SearchParams
from repro.params import max_prefix_length, suggested_subpartitions


class TestValidation:
    def test_basic_construction(self):
        params = SearchParams(w=100, tau=5)
        assert params.w == 100
        assert params.tau == 5
        assert params.k_max == 4
        assert params.m == 1
        assert params.theta == 95

    def test_rejects_nonpositive_window(self):
        with pytest.raises(ConfigurationError):
            SearchParams(w=0, tau=0)

    def test_rejects_negative_tau(self):
        with pytest.raises(ConfigurationError):
            SearchParams(w=10, tau=-1)

    def test_rejects_tau_at_window_size(self):
        with pytest.raises(ConfigurationError):
            SearchParams(w=10, tau=10, k_max=1)

    def test_rejects_bad_k_max(self):
        with pytest.raises(ConfigurationError):
            SearchParams(w=10, tau=1, k_max=0)

    def test_rejects_bad_m(self):
        with pytest.raises(ConfigurationError):
            SearchParams(w=10, tau=1, m=0)

    def test_theorem2_bound_enforced(self):
        # tau + 1 + k(k-1)/2 = 5 + 1 + 6 = 12 > w = 10 must fail.
        with pytest.raises(ConfigurationError):
            SearchParams(w=10, tau=5, k_max=4)
        # w = 12 is exactly at the bound and must pass.
        SearchParams(w=12, tau=5, k_max=4)

    def test_theorem2_bound_with_subpartitions(self):
        # m = 3: bound = tau + 1 + 3 * 3 = tau + 10.
        with pytest.raises(ConfigurationError):
            SearchParams(w=12, tau=5, k_max=3, m=3)
        SearchParams(w=15, tau=5, k_max=3, m=3)

    def test_tau_zero_allowed(self):
        params = SearchParams(w=4, tau=0, k_max=2)
        assert params.theta == 4


class TestFromTheta:
    def test_roundtrip(self):
        params = SearchParams.from_theta(w=100, theta=95)
        assert params.tau == 5
        assert params.theta == 95

    def test_rejects_theta_out_of_range(self):
        with pytest.raises(ConfigurationError):
            SearchParams.from_theta(w=10, theta=0)
        with pytest.raises(ConfigurationError):
            SearchParams.from_theta(w=10, theta=11)

    def test_theta_equal_w_means_exact_match(self):
        params = SearchParams.from_theta(w=10, theta=10, k_max=1)
        assert params.tau == 0


class TestCopies:
    def test_with_k_max(self):
        params = SearchParams(w=100, tau=5, k_max=4)
        copy = params.with_k_max(2)
        assert copy.k_max == 2
        assert copy.w == params.w and copy.tau == params.tau
        assert params.k_max == 4  # original untouched

    def test_with_m(self):
        params = SearchParams(w=100, tau=5, k_max=4)
        copy = params.with_m(3)
        assert copy.m == 3

    def test_with_k_max_revalidates(self):
        params = SearchParams(w=12, tau=5, k_max=4)
        with pytest.raises(ConfigurationError):
            params.with_m(2)  # bound becomes 5 + 1 + 2*6 = 18 > 12


class TestHelpers:
    def test_max_prefix_length_matches_corollary1(self):
        assert max_prefix_length(tau=3, k_max=4) == 3 + 1 + 6
        assert max_prefix_length(tau=5, k_max=1) == 6
        assert max_prefix_length(tau=5, k_max=3, m=2) == 5 + 1 + 2 * 3

    def test_suggested_subpartitions_small_tau(self):
        assert suggested_subpartitions(5) == 1
        assert suggested_subpartitions(20) == 1

    def test_suggested_subpartitions_large_tau(self):
        # Section 7.5: m = 0.25 * tau for tau > 20.
        assert suggested_subpartitions(40) == 10
        assert suggested_subpartitions(100) == 25

    def test_prefix_length_bound_property(self):
        params = SearchParams(w=50, tau=5, k_max=4, m=1)
        assert params.prefix_length_bound == 12
