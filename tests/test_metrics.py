"""Tests for the Appendix D.2 quality metrics."""

from __future__ import annotations

from repro.core.base import MatchPair
from repro.corpus.plagiarism import GroundTruthPair, ObfuscationLevel
from repro.eval import evaluate_quality


def truth(doc=0, dspan=(10, 29), qid=0, qspan=(5, 24), level=ObfuscationLevel.NONE):
    return GroundTruthPair(doc, dspan, qid, qspan, level)


class TestIdentification:
    def test_overlapping_pair_identifies(self):
        # Window covers part of both spans.
        results = {0: [MatchPair(0, 15, 10, 9)]}
        report = evaluate_quality(results, [truth()], w=10)
        assert report.recall == 1.0
        assert report.num_identified == 1

    def test_wrong_document_does_not_identify(self):
        results = {0: [MatchPair(1, 15, 10, 9)]}
        report = evaluate_quality(results, [truth()], w=10)
        assert report.recall == 0.0

    def test_data_side_misses(self):
        results = {0: [MatchPair(0, 40, 10, 9)]}  # data window past span
        report = evaluate_quality(results, [truth()], w=10)
        assert report.recall == 0.0

    def test_query_side_misses(self):
        results = {0: [MatchPair(0, 15, 30, 9)]}  # query window past span
        report = evaluate_quality(results, [truth()], w=10)
        assert report.recall == 0.0

    def test_touching_boundary_counts(self):
        # Window [1, 10] touches data span starting at 10.
        results = {0: [MatchPair(0, 1, 5, 9)]}
        report = evaluate_quality(results, [truth()], w=10)
        assert report.recall == 1.0

    def test_wrong_query_id(self):
        results = {3: [MatchPair(0, 15, 10, 9)]}
        report = evaluate_quality(results, [truth(qid=0)], w=10)
        assert report.recall == 0.0


class TestPrecision:
    def test_perfect_precision(self):
        # Result window [5, 14] entirely inside the identified query span.
        results = {0: [MatchPair(0, 15, 5, 10)]}
        report = evaluate_quality(results, [truth(qspan=(0, 30))], w=10)
        assert report.precision == 1.0
        assert report.positives == 10

    def test_partial_precision(self):
        # Result window [20, 29]; query span [5, 24] -> 5 of 10 covered
        # tokens are true positives.
        results = {0: [MatchPair(0, 15, 20, 10)]}
        report = evaluate_quality(results, [truth()], w=10)
        assert report.positives == 10
        assert report.true_positives == 5
        assert report.precision == 0.5

    def test_unidentified_truth_gives_no_true_positives(self):
        # Result overlaps the query span but not the data span: the
        # truth is not identified, so covered tokens are false positives.
        results = {0: [MatchPair(0, 90, 10, 10)]}
        report = evaluate_quality(results, [truth()], w=10)
        assert report.recall == 0.0
        assert report.precision == 0.0

    def test_no_results_zero_precision_and_recall(self):
        report = evaluate_quality({0: []}, [truth()], w=10)
        assert report.precision == 0.0 and report.recall == 0.0

    def test_overlapping_result_windows_count_tokens_once(self):
        results = {0: [MatchPair(0, 15, 5, 10), MatchPair(0, 15, 6, 10)]}
        report = evaluate_quality(results, [truth(qspan=(0, 30))], w=10)
        assert report.positives == 11  # tokens 5..15


class TestLevels:
    def test_recall_by_level(self):
        truths = [
            truth(qid=0, qspan=(5, 24), level=ObfuscationLevel.NONE),
            truth(qid=1, qspan=(5, 24), level=ObfuscationLevel.HIGH),
        ]
        results = {0: [MatchPair(0, 15, 10, 9)], 1: []}
        report = evaluate_quality(results, truths, w=10)
        assert report.recall_by_level[ObfuscationLevel.NONE] == 1.0
        assert report.recall_by_level[ObfuscationLevel.HIGH] == 0.0
        assert report.recall == 0.5

    def test_empty_truth(self):
        report = evaluate_quality({0: [MatchPair(0, 0, 0, 5)]}, [], w=5)
        assert report.recall == 0.0
        assert report.num_truth == 0

    def test_as_row_format(self):
        report = evaluate_quality({0: [MatchPair(0, 15, 10, 9)]}, [truth()], w=10)
        row = report.as_row("pkwise")
        assert "pkwise" in row and "precision" in row and "recall" in row
