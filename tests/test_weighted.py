"""Tests for the weighted extension (Appendix C)."""

from __future__ import annotations

import random
from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    ConfigurationError,
    DocumentCollection,
    GlobalOrder,
    PartitionScheme,
    SearchParams,
    WeightedPKWiseSearcher,
)
from repro.baselines import BruteForceSearcher
from repro.core.weighted import weighted_overlap

from .conftest import random_collection


def brute_force_weighted(data, query, w, theta, weight_of_token):
    out = set()
    for document in data:
        for i in range(document.num_windows(w)):
            counts = Counter(document.tokens[i : i + w])
            for j in range(max(0, len(query.tokens) - w + 1)):
                query_counts = Counter(query.tokens[j : j + w])
                weight = sum(
                    min(count, query_counts[token]) * weight_of_token(token)
                    for token, count in counts.items()
                )
                if weight >= theta:
                    out.add((document.doc_id, i, j, round(weight, 9)))
    return out


def as_set(pairs):
    return {
        (p.doc_id, p.data_start, p.query_start, round(p.intersection_weight, 9))
        for p in pairs
    }


class TestWeightedOverlap:
    def test_weighted_multiset_intersection(self):
        weights = {0: 2.0, 1: 0.5}
        assert weighted_overlap([0, 0, 1], [0, 1, 1], weights.get) == 2.0 + 0.5

    def test_disjoint_is_zero(self):
        assert weighted_overlap([0], [1], lambda _r: 3.0) == 0.0


class TestWeightedSearch:
    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(0, 1_000_000))
    def test_matches_bruteforce(self, seed):
        rng = random.Random(seed)
        data, query = random_collection(rng, max_docs=3, max_len=25, max_vocab=12)
        w = rng.randint(3, 8)
        theta = rng.uniform(0.5, w * 1.2)
        # Deterministic positive weights per token id.
        weight_of = lambda token_id: 0.5 + (token_id % 5) * 0.7  # noqa: E731
        searcher = WeightedPKWiseSearcher(
            data, w=w, theta_weight=theta, weight_of_token=weight_of
        )
        pairs, _stats = searcher.search(query)
        expected = brute_force_weighted(data, query, w, theta, weight_of)
        assert as_set(pairs) == expected

    def test_unit_weights_recover_unweighted(self):
        rng = random.Random(5)
        data, query = random_collection(rng, max_docs=3, max_len=30, max_vocab=10)
        w, tau = 6, 2
        params = SearchParams(w=w, tau=tau, k_max=1)
        order = GlobalOrder(data, w)
        unweighted = BruteForceSearcher(data, params, order=order).search(query)
        weighted = WeightedPKWiseSearcher(
            data, w=w, theta_weight=w - tau, weight_of_token=lambda _t: 1.0,
            order=order,
        )
        pairs, _ = weighted.search(query)
        assert {(p.doc_id, p.data_start, p.query_start) for p in pairs} == {
            (p.doc_id, p.data_start, p.query_start) for p in unweighted.pairs
        }

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 1_000_000))
    def test_k2_scheme_with_fallback_is_exact(self, seed):
        # k_max = 2 scheme exercises the universal-signature fallback for
        # unfilterable windows; results must remain exact.
        rng = random.Random(seed)
        data, query = random_collection(rng, max_docs=2, max_len=20, max_vocab=8)
        w = rng.randint(3, 6)
        theta = rng.uniform(0.5, w)
        weight_of = lambda token_id: 0.2 + (token_id % 3) * 1.3  # noqa: E731
        order = GlobalOrder(data, w)
        scheme = PartitionScheme(
            universe_size=order.universe_size,
            borders=(order.universe_size // 2,),
        )
        searcher = WeightedPKWiseSearcher(
            data, w=w, theta_weight=theta, weight_of_token=weight_of,
            scheme=scheme, order=order,
        )
        pairs, _ = searcher.search(query)
        assert as_set(pairs) == brute_force_weighted(data, query, w, theta, weight_of)

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 1_000_000))
    def test_subpartitioned_scheme_is_exact(self, seed):
        # m > 1 sub-partitions in the weighted case (Appendix C + Sec. 6).
        rng = random.Random(seed)
        data, query = random_collection(rng, max_docs=2, max_len=18, max_vocab=8)
        w = rng.randint(3, 6)
        theta = rng.uniform(0.5, w)
        weight_of = lambda token_id: 0.4 + (token_id % 4) * 0.9  # noqa: E731
        order = GlobalOrder(data, w)
        scheme = PartitionScheme(
            universe_size=order.universe_size,
            borders=(order.universe_size // 3,),
            m=2,
        )
        searcher = WeightedPKWiseSearcher(
            data, w=w, theta_weight=theta, weight_of_token=weight_of,
            scheme=scheme, order=order,
        )
        pairs, _ = searcher.search(query)
        assert as_set(pairs) == brute_force_weighted(data, query, w, theta, weight_of)

    def test_short_query(self):
        data = DocumentCollection()
        data.add_text("a b c d e f")
        searcher = WeightedPKWiseSearcher(
            data, w=4, theta_weight=2.0, weight_of_token=lambda _t: 1.0
        )
        pairs, stats = searcher.search(data.encode_query("a b"))
        assert pairs == [] and stats.num_results == 0


class TestValidation:
    def _data(self):
        data = DocumentCollection()
        data.add_text("a b c d")
        return data

    def test_rejects_nonpositive_theta(self):
        with pytest.raises(ConfigurationError):
            WeightedPKWiseSearcher(
                self._data(), w=2, theta_weight=0.0, weight_of_token=lambda _t: 1.0
            )

    def test_rejects_nonpositive_weights(self):
        with pytest.raises(ConfigurationError):
            WeightedPKWiseSearcher(
                self._data(), w=2, theta_weight=1.0, weight_of_token=lambda _t: 0.0
            )

    def test_rejects_bad_default_weight(self):
        with pytest.raises(ConfigurationError):
            WeightedPKWiseSearcher(
                self._data(), w=2, theta_weight=1.0,
                weight_of_token=lambda _t: 1.0, default_weight=-1.0,
            )

    def test_query_only_tokens_use_default_weight(self):
        data = self._data()
        searcher = WeightedPKWiseSearcher(
            data, w=2, theta_weight=1.0, weight_of_token=lambda _t: 1.0,
            default_weight=2.5,
        )
        assert searcher.weight_of_rank(-1) == 2.5
