"""Tests for index save/load."""

from __future__ import annotations

import pickle
from pathlib import Path

import pytest

from repro import (
    PersistenceError,
    PKWiseSearcher,
    SearchParams,
    save_searcher,
)
from repro.persistence import load_bundle, load_searcher

from .conftest import pairs_as_set


@pytest.fixture
def built(small_corpus):
    params = SearchParams(w=10, tau=2, k_max=3)
    return small_corpus, PKWiseSearcher(small_corpus, params)


class TestRoundtrip:
    def test_search_results_identical(self, built, tmp_path):
        data, searcher = built
        path = tmp_path / "index.pkl"
        save_searcher(searcher, path)
        loaded = load_searcher(path)
        query = data[3]
        assert pairs_as_set(loaded.search(query)) == pairs_as_set(
            searcher.search(query)
        )

    def test_bundle_with_data(self, built, tmp_path):
        data, searcher = built
        path = tmp_path / "index.pkl"
        save_searcher(searcher, path, data=data)
        loaded, loaded_data = load_bundle(path)
        assert loaded_data is not None
        assert len(loaded_data) == len(data)
        assert loaded_data[0].tokens == data[0].tokens

    def test_bundle_without_data(self, built, tmp_path):
        _data, searcher = built
        path = tmp_path / "index.pkl"
        save_searcher(searcher, path)
        _loaded, loaded_data = load_bundle(path)
        assert loaded_data is None

    def test_params_preserved(self, built, tmp_path):
        _data, searcher = built
        path = tmp_path / "index.pkl"
        save_searcher(searcher, path)
        loaded = load_searcher(path)
        assert loaded.params == searcher.params
        assert loaded.scheme.borders == searcher.scheme.borders

    def test_atomic_write_leaves_no_temp(self, built, tmp_path):
        _data, searcher = built
        path = tmp_path / "index.pkl"
        save_searcher(searcher, path)
        assert not list(tmp_path.glob("*.tmp"))

    def test_failing_dump_cleans_temp_and_keeps_old_file(self, built, tmp_path):
        # Regression: a raising pickle.dump used to leak ``path + .tmp``.
        _data, searcher = built
        path = tmp_path / "index.pkl"
        save_searcher(searcher, path)
        good_bytes = path.read_bytes()

        class Unpicklable:
            def __reduce__(self):
                raise RuntimeError("simulated dump failure")

        with pytest.raises(RuntimeError, match="simulated dump failure"):
            save_searcher(searcher, path, data=Unpicklable())
        assert not list(tmp_path.glob("*.tmp"))
        # The previous index file survives a failed overwrite untouched.
        assert path.read_bytes() == good_bytes
        assert load_searcher(path).params == searcher.params

    def test_concurrent_writers_use_distinct_temp_names(
        self, built, tmp_path, monkeypatch
    ):
        # Regression: the fixed ``path + .tmp`` name raced concurrent
        # writers; mkstemp must produce a fresh name per call even with
        # a writer's temp file already sitting in the directory.
        import repro.persistence as persistence

        _data, searcher = built
        path = tmp_path / "index.pkl"
        seen = []
        original = persistence.tempfile.mkstemp

        def recording_mkstemp(*args, **kwargs):
            fd, name = original(*args, **kwargs)
            seen.append(name)
            return fd, name

        monkeypatch.setattr(persistence.tempfile, "mkstemp", recording_mkstemp)
        save_searcher(searcher, path)
        save_searcher(searcher, path)
        assert len(seen) == 2
        assert seen[0] != seen[1]
        for name in seen:
            assert name.endswith(".tmp")
            assert Path(name).parent == tmp_path


class TestErrors:
    def test_missing_file(self, tmp_path):
        with pytest.raises(PersistenceError):
            load_searcher(tmp_path / "nope.pkl")

    def test_garbage_file(self, tmp_path):
        path = tmp_path / "garbage.pkl"
        path.write_bytes(b"not a pickle at all")
        with pytest.raises(PersistenceError):
            load_searcher(path)

    def test_wrong_pickle_content(self, tmp_path):
        path = tmp_path / "wrong.pkl"
        path.write_bytes(pickle.dumps({"hello": "world"}))
        with pytest.raises(PersistenceError):
            load_searcher(path)

    def test_version_mismatch(self, built, tmp_path):
        _data, searcher = built
        path = tmp_path / "index.pkl"
        save_searcher(searcher, path)
        envelope = pickle.loads(path.read_bytes())
        envelope["version"] = 999
        path.write_bytes(pickle.dumps(envelope))
        with pytest.raises(PersistenceError, match="version"):
            load_searcher(path)

    def test_non_searcher_payload(self, tmp_path):
        path = tmp_path / "odd.pkl"
        path.write_bytes(
            pickle.dumps(
                {"magic": "repro-pkwise-index", "version": 1, "searcher": 42}
            )
        )
        with pytest.raises(PersistenceError):
            load_searcher(path)
