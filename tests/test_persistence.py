"""Tests for index save/load."""

from __future__ import annotations

import pickle
from pathlib import Path

import pytest

from repro import (
    FaultPlan,
    FaultSpec,
    PersistenceError,
    PKWiseSearcher,
    SearchParams,
    faults,
    save_searcher,
)
from repro.persistence import (
    load_bundle,
    load_searcher,
    read_envelope,
    rotated_paths,
    write_envelope,
)

from .conftest import pairs_as_set


@pytest.fixture
def built(small_corpus):
    params = SearchParams(w=10, tau=2, k_max=3)
    return small_corpus, PKWiseSearcher(small_corpus, params)


class TestRoundtrip:
    def test_search_results_identical(self, built, tmp_path):
        data, searcher = built
        path = tmp_path / "index.pkl"
        save_searcher(searcher, path)
        loaded = load_searcher(path)
        query = data[3]
        assert pairs_as_set(loaded.search(query)) == pairs_as_set(
            searcher.search(query)
        )

    def test_bundle_with_data(self, built, tmp_path):
        data, searcher = built
        path = tmp_path / "index.pkl"
        save_searcher(searcher, path, data=data)
        loaded_data = load_bundle(path).data
        assert loaded_data is not None
        assert len(loaded_data) == len(data)
        assert loaded_data[0].tokens == data[0].tokens

    def test_bundle_without_data(self, built, tmp_path):
        _data, searcher = built
        path = tmp_path / "index.pkl"
        save_searcher(searcher, path)
        assert load_bundle(path).data is None

    def test_params_preserved(self, built, tmp_path):
        _data, searcher = built
        path = tmp_path / "index.pkl"
        save_searcher(searcher, path)
        loaded = load_searcher(path)
        assert loaded.params == searcher.params
        assert loaded.scheme.borders == searcher.scheme.borders

    def test_atomic_write_leaves_no_temp(self, built, tmp_path):
        _data, searcher = built
        path = tmp_path / "index.pkl"
        save_searcher(searcher, path)
        assert not list(tmp_path.glob("*.tmp"))

    def test_failing_dump_cleans_temp_and_keeps_old_file(self, built, tmp_path):
        # Regression: a raising pickle.dump used to leak ``path + .tmp``.
        _data, searcher = built
        path = tmp_path / "index.pkl"
        save_searcher(searcher, path)
        good_bytes = path.read_bytes()

        class Unpicklable:
            def __reduce__(self):
                raise RuntimeError("simulated dump failure")

        with pytest.raises(RuntimeError, match="simulated dump failure"):
            save_searcher(searcher, path, data=Unpicklable())
        assert not list(tmp_path.glob("*.tmp"))
        # The previous index file survives a failed overwrite untouched.
        assert path.read_bytes() == good_bytes
        assert load_searcher(path).params == searcher.params

    def test_concurrent_writers_use_distinct_temp_names(
        self, built, tmp_path, monkeypatch
    ):
        # Regression: the fixed ``path + .tmp`` name raced concurrent
        # writers; mkstemp must produce a fresh name per call even with
        # a writer's temp file already sitting in the directory.
        import repro.persistence as persistence

        _data, searcher = built
        path = tmp_path / "index.pkl"
        seen = []
        original = persistence.tempfile.mkstemp

        def recording_mkstemp(*args, **kwargs):
            fd, name = original(*args, **kwargs)
            seen.append(name)
            return fd, name

        monkeypatch.setattr(persistence.tempfile, "mkstemp", recording_mkstemp)
        save_searcher(searcher, path)
        save_searcher(searcher, path)
        assert len(seen) == 2
        assert seen[0] != seen[1]
        for name in seen:
            assert name.endswith(".tmp")
            assert Path(name).parent == tmp_path


class TestErrors:
    def test_missing_file(self, tmp_path):
        with pytest.raises(PersistenceError):
            load_searcher(tmp_path / "nope.pkl")

    def test_garbage_file(self, tmp_path):
        path = tmp_path / "garbage.pkl"
        path.write_bytes(b"not a pickle at all")
        with pytest.raises(PersistenceError):
            load_searcher(path)

    def test_wrong_pickle_content(self, tmp_path):
        path = tmp_path / "wrong.pkl"
        path.write_bytes(pickle.dumps({"hello": "world"}))
        with pytest.raises(PersistenceError):
            load_searcher(path)

    def test_version_mismatch(self, built, tmp_path):
        _data, searcher = built
        path = tmp_path / "index.pkl"
        save_searcher(searcher, path)
        envelope = pickle.loads(path.read_bytes())
        envelope["version"] = 999
        path.write_bytes(pickle.dumps(envelope))
        with pytest.raises(PersistenceError, match="version"):
            load_searcher(path)

    def test_non_searcher_payload(self, tmp_path):
        path = tmp_path / "odd.pkl"
        path.write_bytes(
            pickle.dumps(
                {"magic": "repro-pkwise-index", "version": 1, "searcher": 42}
            )
        )
        with pytest.raises(PersistenceError):
            load_searcher(path)

    def test_v1_file_names_the_old_version(self, tmp_path):
        path = tmp_path / "old.pkl"
        path.write_bytes(
            pickle.dumps(
                {"magic": "repro-pkwise-index", "version": 1, "searcher": None}
            )
        )
        with pytest.raises(PersistenceError, match="format version 1"):
            load_searcher(path)

    def test_wrong_kind_envelope(self, built, tmp_path):
        path = tmp_path / "other.ckpt"
        write_envelope(path, "workload-checkpoint", {"records": []})
        with pytest.raises(PersistenceError, match="not 'pkwise-index'"):
            load_searcher(path)


class TestChecksums:
    """A flipped payload byte is a typed error, never a pickle error."""

    @pytest.fixture(autouse=True)
    def _clean_plan(self):
        faults.clear_plan()
        yield
        faults.clear_plan()

    def test_corrupt_section_named_in_error(self, built, tmp_path):
        # Corrupt the searcher section's bytes after digest computation,
        # exactly as a disk fault would, via the persistence.write hook.
        _data, searcher = built
        path = tmp_path / "index.pkl"
        save_searcher(searcher, path)
        faults.install_plan(
            FaultPlan(
                [
                    FaultSpec(
                        point="persistence.read",
                        kind="corrupt",
                        match={"section": "searcher"},
                    )
                ]
            )
        )
        with pytest.raises(PersistenceError, match="section 'searcher'"):
            load_searcher(path, fallback=False)

    def test_corrupt_write_detected_on_clean_read(self, built, tmp_path):
        _data, searcher = built
        path = tmp_path / "index.pkl"
        faults.install_plan(
            FaultPlan(
                [
                    FaultSpec(
                        point="persistence.write",
                        kind="corrupt",
                        match={"section": "searcher"},
                    )
                ]
            )
        )
        save_searcher(searcher, path)
        faults.clear_plan()
        # The digest was computed over the corrupted bytes, so the read
        # digest check passes but unpickling may still fail — either
        # way the error is typed, never a raw pickle exception.
        try:
            load_searcher(path, fallback=False)
        except PersistenceError:
            pass

    def test_flipped_byte_on_disk_is_typed_error(self, built, tmp_path):
        # No fault plan at all: corrupt the file bytes directly.  The
        # outer frame usually still unpickles (we flip a byte near the
        # end, inside a section payload), and the digest check turns it
        # into a typed error before any payload unpickle happens.
        _data, searcher = built
        path = tmp_path / "index.pkl"
        save_searcher(searcher, path)
        raw = bytearray(path.read_bytes())
        raw[len(raw) // 2] ^= 0xFF
        path.write_bytes(bytes(raw))
        with pytest.raises(PersistenceError):
            load_searcher(path, fallback=False)

    def test_envelope_header_roundtrip(self, tmp_path):
        path = tmp_path / "env.bin"
        write_envelope(
            path, "test-kind", {"a": [1, 2, 3]}, header={"note": "hi"}
        )
        header, sections = read_envelope(path, "test-kind")
        assert header == {"note": "hi"}
        assert sections == {"a": [1, 2, 3]}


class TestRotation:
    def test_rotated_paths_helper(self, tmp_path):
        path = tmp_path / "index.pkl"
        assert rotated_paths(path, 2) == [
            tmp_path / "index.pkl.1",
            tmp_path / "index.pkl.2",
        ]

    def test_generations_shift_newest_first(self, built, tmp_path):
        _data, searcher = built
        path = tmp_path / "index.pkl"
        save_searcher(searcher, path, rotate=2)  # nothing to rotate yet
        first = path.read_bytes()
        save_searcher(searcher, path, rotate=2)
        second = path.read_bytes()
        save_searcher(searcher, path, rotate=2)
        # .1 is the previous primary, .2 the one before that.
        assert (tmp_path / "index.pkl.1").read_bytes() == second
        assert (tmp_path / "index.pkl.2").read_bytes() == first
        save_searcher(searcher, path, rotate=2)
        # The oldest generation fell off the end.
        assert (tmp_path / "index.pkl.2").read_bytes() == second

    def test_fallback_to_rotated_snapshot_warns(self, built, tmp_path):
        data, searcher = built
        path = tmp_path / "index.pkl"
        save_searcher(searcher, path, rotate=1)
        save_searcher(searcher, path, rotate=1)  # now index.pkl.1 exists
        path.write_bytes(b"scribbled over by a crash")
        with pytest.warns(RuntimeWarning, match="fell back to"):
            loaded = load_searcher(path)
        query = data[3]
        assert pairs_as_set(loaded.search(query)) == pairs_as_set(
            searcher.search(query)
        )

    def test_fallback_disabled_raises_primary_error(self, built, tmp_path):
        _data, searcher = built
        path = tmp_path / "index.pkl"
        save_searcher(searcher, path, rotate=1)
        save_searcher(searcher, path, rotate=1)
        path.write_bytes(b"scribbled over by a crash")
        with pytest.raises(PersistenceError):
            load_searcher(path, fallback=False)

    def test_bundle_records_fallback_source(self, built, tmp_path):
        _data, searcher = built
        path = tmp_path / "index.pkl"
        save_searcher(searcher, path, rotate=1)
        save_searcher(searcher, path, rotate=1)
        path.write_bytes(b"scribbled over by a crash")
        with pytest.warns(RuntimeWarning):
            bundle = load_bundle(path)
        assert bundle.path == tmp_path / "index.pkl.1"

    def test_no_intact_generation_reraises_primary(self, built, tmp_path):
        _data, searcher = built
        path = tmp_path / "index.pkl"
        save_searcher(searcher, path, rotate=1)
        save_searcher(searcher, path, rotate=1)
        path.write_bytes(b"bad primary")
        (tmp_path / "index.pkl.1").write_bytes(b"bad snapshot too")
        with pytest.raises(PersistenceError, match="index.pkl[^.]"):
            load_searcher(path)
