"""E6 / Figure 8: query processing time vs alternatives.

Compares pkwise, pkwise-nonint (no interval sharing), Adapt, FBW and —
on REUTERS only, as in the paper where it could not finish TREC —
Faerie.  Expected shape: pkwise fastest among exact methods (paper:
3.3-12.8x over Adapt), pkwise-nonint still beats Adapt, FBW faster but
approximate (its result counts are reported next to the times), Faerie
orders of magnitude slower.
"""

from __future__ import annotations

from functools import lru_cache

import pytest

from repro import PKWiseNonIntervalSearcher, PKWiseSearcher, SearchParams
from repro.baselines import AdaptSearcher, FaerieSearcher, FBWSearcher
from repro.eval import run_searcher

from common import order_for, workload, write_report

TAU_SWEEP = [2, 5, 8]
W_SWEEP = [25, 50, 100]

#: Faerie runs only on REUTERS and only at one setting (it is the
#: paper's >24h case on TREC; at bench scale it is merely very slow).
FAERIE_SETTING = ("REUTERS", 50, 2)

_collected: dict[tuple, object] = {}


@lru_cache(maxsize=None)
def _searcher(profile: str, algorithm: str, w: int, tau: int):
    data, _queries, _truth = workload(profile)
    order = order_for(profile, w)
    params = SearchParams(w=w, tau=tau, k_max=4)
    flat = params.with_k_max(1)
    if algorithm == "pkwise":
        return PKWiseSearcher(data, params, order=order)
    if algorithm == "pkwise-nonint":
        return PKWiseNonIntervalSearcher(data, params, order=order)
    if algorithm == "adapt":
        return AdaptSearcher(data, flat, order=order)
    if algorithm == "fbw":
        return FBWSearcher(data, flat, order=order)
    if algorithm == "faerie":
        return FaerieSearcher(data, flat, order=order)
    raise ValueError(algorithm)


def _run(profile: str, algorithm: str, w: int, tau: int) -> float:
    searcher = _searcher(profile, algorithm, w, tau)
    _data, queries, _truth = workload(profile)
    run = run_searcher(searcher, queries, name=algorithm)
    _collected[(profile, algorithm, w, tau)] = run
    return run.avg_query_seconds


ALGORITHMS = ["pkwise", "pkwise-nonint", "adapt", "fbw"]


@pytest.mark.parametrize("profile", ["REUTERS", "TREC"])
@pytest.mark.parametrize("algorithm", ALGORITHMS)
@pytest.mark.parametrize("tau", TAU_SWEEP)
def test_fig8_vary_tau(benchmark, profile, algorithm, tau):
    """Figures 8(a)/(c): w=100, varying tau."""
    _searcher(profile, algorithm, 100, tau)
    benchmark.pedantic(
        _run, args=(profile, algorithm, 100, tau), rounds=1, iterations=1
    )


@pytest.mark.parametrize("profile", ["REUTERS", "TREC"])
@pytest.mark.parametrize("algorithm", ALGORITHMS)
@pytest.mark.parametrize("w", W_SWEEP)
def test_fig8_vary_w(benchmark, profile, algorithm, w):
    """Figures 8(b)/(d): tau=5, varying w."""
    _searcher(profile, algorithm, w, 5)
    benchmark.pedantic(
        _run, args=(profile, algorithm, w, 5), rounds=1, iterations=1
    )


def test_fig8_faerie_single_setting(benchmark):
    profile, w, tau = FAERIE_SETTING
    _searcher(profile, "faerie", w, tau)
    _run(profile, "pkwise", w, tau)  # reference point for the report
    benchmark.pedantic(
        _run, args=(profile, "faerie", w, tau), rounds=1, iterations=1
    )


def test_fig8_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    lines = ["Figure 8: avg query time vs alternatives (ms; build excluded)"]
    header = (
        f"{'setting':<18}" + "".join(f"{a:>15}" for a in ALGORITHMS)
        + f"{'pkw speedup vs adapt':>22}"
    )
    for profile in ("REUTERS", "TREC"):
        lines.append(f"-- {profile}")
        lines.append(header)
        for w, tau in [(100, t) for t in TAU_SWEEP] + [(w, 5) for w in W_SWEEP]:
            runs = {
                a: _collected.get((profile, a, w, tau)) for a in ALGORITHMS
            }
            if not any(runs.values()):
                continue
            cells = "".join(
                f"{runs[a].avg_query_seconds * 1e3:>15.2f}" if runs[a] else f"{'n/a':>15}"
                for a in ALGORITHMS
            )
            speed = ""
            if runs["pkwise"] and runs["adapt"]:
                speed = (
                    f"{runs['adapt'].avg_query_seconds / runs['pkwise'].avg_query_seconds:>21.1f}x"
                )
            lines.append(f"w={w:<4} tau={tau:<8}" + cells + speed)
        fbw_runs = [
            (_collected.get((profile, "fbw", w, tau)),
             _collected.get((profile, "pkwise", w, tau)))
            for w, tau in [(100, t) for t in TAU_SWEEP] + [(w, 5) for w in W_SWEEP]
        ]
        fractions = [
            f"{fbw.num_results / max(1, pkw.num_results):.0%}"
            for fbw, pkw in fbw_runs
            if fbw and pkw
        ]
        lines.append(f"   FBW result fraction per setting: {', '.join(fractions)}")
    faerie = _collected.get((FAERIE_SETTING[0], "faerie", *FAERIE_SETTING[1:]))
    pkwise = _collected.get((FAERIE_SETTING[0], "pkwise", *FAERIE_SETTING[1:]))
    if faerie and pkwise and pkwise.avg_query_seconds > 0:
        lines.append(
            f"Faerie at w={FAERIE_SETTING[1]}, tau={FAERIE_SETTING[2]} (REUTERS): "
            f"{faerie.avg_query_seconds * 1e3:.1f}ms = "
            f"{faerie.avg_query_seconds / pkwise.avg_query_seconds:.0f}x pkwise"
        )
    write_report("fig8_runtime", lines)
