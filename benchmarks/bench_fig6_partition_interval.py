"""E3 / Figure 6: effect of partitioning and interval sharing (REUTERS).

Compares three variants with phase-decomposed query time:

* ``P+I``   — partitioned k-wise with interval sharing (Algorithm 4),
* ``Non-P`` — non-partitioned k-wise (all tokens in class 3, the
  paper's best fixed k) with interval sharing,
* ``Non-I`` — partitioned k-wise without interval sharing (Algorithm 2).

Expected shape: partitioning cuts signature-generation time; interval
sharing cuts all three phases (paper: 2.2-5.5x overall).
"""

from __future__ import annotations

from functools import lru_cache

import pytest

from repro import (
    PartitionScheme,
    PKWiseNonIntervalSearcher,
    PKWiseSearcher,
    SearchParams,
)
from repro.eval import run_searcher

from common import order_for, workload, write_report

SETTINGS = [(100, 2), (100, 5), (100, 8), (50, 5), (25, 5)]
VARIANTS = ["P+I", "Non-P", "Non-I"]

_collected: dict[tuple, object] = {}


@lru_cache(maxsize=None)
def _searcher(variant: str, w: int, tau: int):
    data, _queries, _truth = workload("REUTERS")
    order = order_for("REUTERS", w)
    if variant == "P+I":
        params = SearchParams(w=w, tau=tau, k_max=4)
        return PKWiseSearcher(data, params, order=order)
    if variant == "Non-P":
        params = SearchParams(w=w, tau=tau, k_max=3)
        scheme = PartitionScheme.all_k(order.universe_size, 3)
        return PKWiseSearcher(data, params, scheme=scheme, order=order)
    if variant == "Non-I":
        params = SearchParams(w=w, tau=tau, k_max=4)
        return PKWiseNonIntervalSearcher(data, params, order=order)
    raise ValueError(variant)


def _run(variant: str, w: int, tau: int):
    searcher = _searcher(variant, w, tau)
    _data, queries, _truth = workload("REUTERS")
    run = run_searcher(searcher, queries, name=variant)
    _collected[(variant, w, tau)] = run
    return run.avg_query_seconds


@pytest.mark.parametrize("variant", VARIANTS)
@pytest.mark.parametrize("w,tau", SETTINGS)
def test_fig6_variants(benchmark, variant, w, tau):
    _searcher(variant, w, tau)  # build outside the timed region
    benchmark.pedantic(_run, args=(variant, w, tau), rounds=1, iterations=1)


def test_fig6_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    lines = [
        "Figure 6: partitioned vs non-partitioned, interval vs non-interval",
        "(per-phase avg query time; P+I = pkwise)",
    ]
    for w, tau in SETTINGS:
        lines.append(f"-- w={w}, tau={tau}")
        for variant in VARIANTS:
            run = _collected.get((variant, w, tau))
            if run is not None:
                lines.append("  " + run.phase_row())
        p_i = _collected.get(("P+I", w, tau))
        non_i = _collected.get(("Non-I", w, tau))
        if p_i and non_i and p_i.avg_query_seconds > 0:
            lines.append(
                f"  shape: interval sharing speedup "
                f"{non_i.avg_query_seconds / p_i.avg_query_seconds:.1f}x"
            )
    write_report("fig6_partition_interval", lines)
