#!/usr/bin/env python
"""Diff two repro.obs benchmark metrics snapshots; fail on regressions.

Consumes the files written by ``bench_parallel_scaling.py --metrics-out``
(or any two snapshots with the same layout) and enforces two different
contracts on them:

* **Counters must match exactly.**  Abstract operation counts
  (postings entries, hash ops, results...) are deterministic for a
  given workload and independent of the execution path, so any drift
  between two records of the same config is a correctness regression,
  not noise.  This also holds *across start methods*: a fork-run and a
  spawn-run of the same workload must agree counter for counter.
* **Timers may only regress within a tolerance.**  Wall clock is noisy;
  the guard fails only when a timer exceeds the previous record by more
  than ``--time-tolerance`` (a fraction: 0.5 = +50%).

``--min-probe-ratio`` adds an absolute gate on the *current* record
alone: ``probe.compact_to_dict_probe_ratio`` (written by
``bench_compact.py``) must be at least the given floor — the compact
index losing to the dict index on batched probes is a hot-path
regression regardless of any baseline.  ``--min-pruned-fraction`` and
``--min-routing-speedup`` are the same kind of absolute gate over the
``routing`` section written by ``bench_routing.py``: the fingerprint
tier pruning too little, or no longer paying for its own fingerprint
pass, is a regression regardless of baseline.

Records with different configs (corpus size, w, tau, query count) are
not comparable; the guard reports that and exits 0 unless ``--strict``
is given, so a freshly re-scaled benchmark does not spuriously fail CI.

Usage::

    python benchmarks/check_regression.py CURRENT.json PREVIOUS.json \
        [--time-tolerance 0.5] [--strict]

Exit codes: 0 = no regression (or no comparable baseline),
1 = regression found, 2 = malformed input.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: Config keys that must agree for two records to be comparable.
COMPARABLE_KEYS = ("profile", "num_documents", "num_queries", "w", "tau", "k_max")


def load_record(path: Path) -> dict | None:
    """Load one snapshot record; None when the file does not exist."""
    if not path.exists():
        return None
    try:
        record = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise SystemExit(f"error: cannot read {path}: {exc}")
    if not isinstance(record, dict):
        raise SystemExit(f"error: {path} is not a snapshot record")
    return record


def comparable(current: dict, previous: dict) -> list[str]:
    """Config keys that differ between the two records (empty = comparable)."""
    cur, prev = current.get("config", {}), previous.get("config", {})
    return [
        key
        for key in COMPARABLE_KEYS
        if cur.get(key) != prev.get(key)
    ]


def unwrap_snapshot(payload: dict) -> dict:
    """Reduce a ``metrics_snapshot()`` wrapper to its registry snapshot.

    Accepts either the bare ``{counters, timers, gauges}`` dict or any
    wrapper that nests it under a ``metrics`` key (one or more levels).
    """
    while (
        isinstance(payload, dict)
        and "counters" not in payload
        and isinstance(payload.get("metrics"), dict)
    ):
        payload = payload["metrics"]
    return payload


def iter_metric_sections(record: dict):
    """Yield ``(label, registry_snapshot)`` pairs of one record."""
    serial = record.get("serial")
    if isinstance(serial, dict) and "metrics" in serial:
        yield "serial", unwrap_snapshot(serial)
    for row in record.get("parallel", []) or []:
        if isinstance(row, dict) and "metrics" in row:
            yield f"jobs={row.get('jobs')}", unwrap_snapshot(row["metrics"])


def diff_counters(label: str, current: dict, previous: dict) -> list[str]:
    """Exact-match check over one section's counter maps."""
    problems = []
    cur = current.get("counters", {})
    prev = previous.get("counters", {})
    for name in sorted(set(cur) | set(prev)):
        # run.* metrics describe the run shape, not the workload's
        # operation counts; total counts are covered by the config gate.
        if cur.get(name) != prev.get(name):
            problems.append(
                f"[{label}] counter {name}: {prev.get(name)} -> {cur.get(name)}"
            )
    return problems


def diff_timers(
    label: str, current: dict, previous: dict, tolerance: float
) -> list[str]:
    """Timers that regressed beyond ``previous * (1 + tolerance)``."""
    problems = []
    cur = current.get("timers", {})
    prev = previous.get("timers", {})
    for name in sorted(set(cur) & set(prev)):
        before, after = float(prev[name]), float(cur[name])
        if before > 0 and after > before * (1.0 + tolerance):
            problems.append(
                f"[{label}] timer {name}: {before:.4f}s -> {after:.4f}s "
                f"(+{(after / before - 1.0) * 100:.0f}%, "
                f"allowed +{tolerance * 100:.0f}%)"
            )
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument("current", type=Path,
                        help="latest metrics snapshot (from --metrics-out)")
    parser.add_argument("previous", type=Path,
                        help="baseline snapshot to diff against")
    parser.add_argument("--time-tolerance", type=float, default=0.5,
                        help="allowed fractional timer growth (default 0.5)")
    parser.add_argument("--strict", action="store_true",
                        help="fail (exit 1) on incomparable configs or a "
                             "missing baseline instead of passing")
    parser.add_argument("--min-probe-ratio", type=float, default=None,
                        help="fail when the current record's "
                             "probe.compact_to_dict_probe_ratio is below "
                             "this floor (records lacking the section fail "
                             "only under --strict)")
    parser.add_argument("--min-pruned-fraction", type=float, default=None,
                        help="fail when the current record's "
                             "routing.pruned_fraction (written by "
                             "bench_routing.py) is below this floor")
    parser.add_argument("--min-routing-speedup", type=float, default=None,
                        help="fail when the current record's "
                             "routing.net_speedup is below this floor")
    args = parser.parse_args(argv)

    current = load_record(args.current)
    if current is None:
        print(f"error: current snapshot {args.current} does not exist",
              file=sys.stderr)
        return 2
    previous = load_record(args.previous)
    if previous is None:
        print(f"no baseline at {args.previous}; nothing to diff",
              file=sys.stderr)
        return 1 if args.strict else 0

    mismatched = comparable(current, previous)
    if mismatched:
        print(
            "records are not comparable; config differs on: "
            + ", ".join(mismatched),
            file=sys.stderr,
        )
        return 1 if args.strict else 0

    current_sections = dict(iter_metric_sections(current))
    previous_sections = dict(iter_metric_sections(previous))
    problems: list[str] = []

    # Absolute gate on the current record (no baseline involved): the
    # compact index must not lose to the dict index on batched probes.
    if args.min_probe_ratio is not None:
        ratio = current.get("probe", {}).get("compact_to_dict_probe_ratio")
        if ratio is None:
            message = "current record has no probe.compact_to_dict_probe_ratio"
            if args.strict:
                problems.append(message)
            else:
                print(f"note: {message}; ratio gate skipped", file=sys.stderr)
        elif float(ratio) < args.min_probe_ratio:
            problems.append(
                f"probe ratio compact/dict {float(ratio):.2f} below required "
                f"{args.min_probe_ratio}"
            )

    # Absolute gates on the routing section (bench_routing.py): the
    # fingerprint tier must keep pruning and keep paying for itself.
    for attr, key, floor_format in (
        ("min_pruned_fraction", "pruned_fraction", "{:.2%}"),
        ("min_routing_speedup", "net_speedup", "{:.2f}x"),
    ):
        floor = getattr(args, attr)
        if floor is None:
            continue
        value = current.get("routing", {}).get(key)
        if value is None:
            message = f"current record has no routing.{key}"
            if args.strict:
                problems.append(message)
            else:
                print(f"note: {message}; gate skipped", file=sys.stderr)
        elif float(value) < floor:
            problems.append(
                f"routing {key} " + floor_format.format(float(value))
                + f" below required " + floor_format.format(floor)
            )

    # Internal parity: within the current record, every parallel
    # section's counters must equal the serial section's — the merged
    # registry of a --jobs N run is field-for-field the serial run's.
    serial_metrics = current_sections.get("serial")
    if serial_metrics is not None:
        for label, metrics in current_sections.items():
            if label != "serial":
                problems.extend(
                    diff_counters(f"serial vs {label}", metrics, serial_metrics)
                )

    checked = 0
    for label in sorted(set(current_sections) & set(previous_sections)):
        checked += 1
        problems.extend(
            diff_counters(label, current_sections[label], previous_sections[label])
        )
        problems.extend(
            diff_timers(
                label,
                current_sections[label],
                previous_sections[label],
                args.time_tolerance,
            )
        )
    if checked == 0:
        print("no overlapping metric sections between the records",
              file=sys.stderr)
        return 1 if args.strict else 0

    if problems:
        print(f"REGRESSION: {len(problems)} metric(s) drifted:", file=sys.stderr)
        for line in problems:
            print(f"  {line}", file=sys.stderr)
        return 1
    print(
        f"ok: {checked} section(s) compared, counters identical, "
        f"timers within +{args.time_tolerance * 100:.0f}%",
        file=sys.stderr,
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
