#!/usr/bin/env python
"""Parallel scaling: speedup of the --jobs execution engine.

Runs the fig8 query workload (synthetic REUTERS by default) serially and
at 1/2/4/8 workers through :class:`repro.ParallelExecutor`, covering all
three parallel grains — query sharding, index construction, and the
self-join — and emits a machine-readable ``BENCH_parallel.json`` at the
repo root (the start of the perf trajectory; later PRs append newer
records next to it for comparison).

Every parallel run is parity-checked against the serial result; the
process exits non-zero on any mismatch, so CI smoke runs double as
correctness checks.  Speedup is bounded by ``os.cpu_count()`` — the
host core count is recorded in the JSON so numbers from different
machines are interpretable.

Usage::

    PYTHONPATH=src python benchmarks/bench_parallel_scaling.py
    PYTHONPATH=src python benchmarks/bench_parallel_scaling.py \
        --tiny --start-method spawn --jobs 1,2   # CI smoke

This is a standalone script (not a pytest bench): the spawn start
method re-imports ``__main__`` in every worker, which only works for a
real file with an ``if __name__`` guard.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent


def _ensure_importable() -> None:
    sys.path.insert(0, str(Path(__file__).resolve().parent))
    try:
        import repro  # noqa: F401
    except ImportError:
        sys.path.insert(0, str(ROOT / "src"))


def build_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument("--profile", default="REUTERS",
                        help="synthetic dataset profile (default REUTERS)")
    parser.add_argument("-w", "--window", type=int, default=50)
    parser.add_argument("--tau", type=int, default=5)
    parser.add_argument("--jobs", default="1,2,4,8",
                        help="comma-separated worker counts (default 1,2,4,8)")
    parser.add_argument("--rounds", type=int, default=3,
                        help="measurement rounds per setting; best is kept")
    parser.add_argument("--selfjoin-docs", type=int, default=12,
                        help="documents in the self-join subset")
    parser.add_argument("--start-method", default=None,
                        choices=[None, "fork", "spawn"],
                        help="multiprocessing start method (default: fork "
                             "where available)")
    parser.add_argument("--tiny", action="store_true",
                        help="smoke-test scale (CI): tiny corpus, 1 round")
    parser.add_argument("--out", default=str(ROOT / "BENCH_parallel.json"),
                        help="output JSON path (default: repo root)")
    parser.add_argument("--metrics-out", default=None,
                        help="also write a standalone repro.obs metrics "
                             "snapshot to this path (the format "
                             "benchmarks/check_regression.py diffs)")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_arg_parser().parse_args(argv)
    if args.tiny:
        # Must be set before importing benchmarks/common (reads it once).
        os.environ.setdefault("REPRO_BENCH_SCALE", "0.25")
        args.rounds = 1
        args.selfjoin_docs = min(args.selfjoin_docs, 6)
    _ensure_importable()

    from common import workload

    from repro import ParallelExecutor, PKWiseSearcher, SearchParams
    from repro.core.selfjoin import local_similarity_self_join
    from repro.eval import run_searcher

    jobs_list = [int(part) for part in args.jobs.split(",") if part]
    num_queries = 4 if args.tiny else 8
    data, queries, _truth = workload(args.profile, num_queries=num_queries)
    params = SearchParams(w=args.window, tau=args.tau, k_max=4)
    executor_probe = ParallelExecutor(jobs=1, start_method=args.start_method)

    print(
        f"profile={args.profile} docs={len(data)} queries={len(queries)} "
        f"w={params.w} tau={params.tau} cpus={os.cpu_count()} "
        f"start_method={executor_probe.start_method}",
        file=sys.stderr,
    )

    # ------------------------------------------------------------------
    # Serial reference
    # ------------------------------------------------------------------
    serial_searcher = PKWiseSearcher(data, params)
    serial_build_seconds = serial_searcher.index_build_seconds
    serial_run = min(
        (run_searcher(serial_searcher, queries, name="pkwise-serial")
         for _ in range(args.rounds)),
        key=lambda run: run.total_seconds,
    )
    join_data = data.subset(range(min(args.selfjoin_docs, len(data))))
    join_started = time.perf_counter()
    serial_join = local_similarity_self_join(
        join_data, params, exclude_same_document_within=params.w
    )
    serial_join_seconds = time.perf_counter() - join_started

    # ------------------------------------------------------------------
    # Parallel sweeps
    # ------------------------------------------------------------------
    rows = []
    parity_ok = True
    for jobs in jobs_list:
        executor = ParallelExecutor(jobs=jobs, start_method=args.start_method)

        best_run = min(
            (executor.run_workload(serial_searcher, queries, name=f"pkwise-j{jobs}")
             for _ in range(args.rounds)),
            key=lambda run: run.total_seconds,
        )
        search_parity = best_run.results_by_query == serial_run.results_by_query

        parallel_searcher = executor.build_searcher(data, params)
        build_seconds = parallel_searcher.index_build_seconds
        build_parity = (
            parallel_searcher.index._postings == serial_searcher.index._postings
        )

        join_started = time.perf_counter()
        parallel_join = executor.self_join(
            join_data,
            params,
            exclude_same_document_within=params.w,
            searcher=executor.build_searcher(join_data, params),
        )
        join_seconds = time.perf_counter() - join_started
        join_parity = parallel_join == serial_join

        parity_ok = parity_ok and search_parity and build_parity and join_parity
        rows.append(
            {
                "jobs": jobs,
                "search_seconds": best_run.total_seconds,
                "search_speedup": serial_run.total_seconds / best_run.total_seconds
                if best_run.total_seconds > 0 else 0.0,
                "search_parity": search_parity,
                "worker_skew": best_run.worker_skew,
                "workers_used": best_run.jobs,
                "build_seconds": build_seconds,
                "build_speedup": serial_build_seconds / build_seconds
                if build_seconds > 0 else 0.0,
                "build_parity": build_parity,
                "selfjoin_seconds": join_seconds,
                "selfjoin_speedup": serial_join_seconds / join_seconds
                if join_seconds > 0 else 0.0,
                "selfjoin_parity": join_parity,
                "run": best_run.to_dict(),
                "metrics": best_run.metrics_snapshot(),
            }
        )
        print(
            f"jobs={jobs:<3} search {best_run.total_seconds * 1e3:9.1f}ms "
            f"({rows[-1]['search_speedup']:4.2f}x, skew "
            f"{best_run.worker_skew:4.2f})  build "
            f"{build_seconds * 1e3:9.1f}ms ({rows[-1]['build_speedup']:4.2f}x)  "
            f"selfjoin {join_seconds * 1e3:9.1f}ms "
            f"({rows[-1]['selfjoin_speedup']:4.2f}x)  "
            f"parity={'ok' if search_parity and build_parity and join_parity else 'MISMATCH'}",
            file=sys.stderr,
        )

    record = {
        "bench": "parallel_scaling",
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "host": {
            "cpus": os.cpu_count(),
            "platform": platform.platform(),
            "python": platform.python_version(),
            "start_method": executor_probe.start_method,
        },
        "config": {
            "profile": args.profile,
            "num_documents": len(data),
            "num_queries": len(queries),
            "w": params.w,
            "tau": params.tau,
            "k_max": params.k_max,
            "rounds": args.rounds,
            "tiny": args.tiny,
            "selfjoin_docs": len(join_data),
        },
        "serial": {
            "search_seconds": serial_run.total_seconds,
            "build_seconds": serial_build_seconds,
            "selfjoin_seconds": serial_join_seconds,
            "num_results": serial_run.num_results,
            "run": serial_run.to_dict(),
            "metrics": serial_run.metrics_snapshot(),
        },
        "parallel": rows,
        "max_search_speedup": max(
            (row["search_speedup"] for row in rows), default=0.0
        ),
        "parity_ok": parity_ok,
        "note": "speedup is bounded by host cpus; see host.cpus",
    }
    out_path = Path(args.out)
    out_path.write_text(json.dumps(record, indent=2) + "\n")
    print(f"wrote {out_path}", file=sys.stderr)
    if args.metrics_out:
        # The standalone snapshot record: exactly the sections
        # check_regression.py compares (config for comparability,
        # counters for correctness drift, timers within tolerance).
        snapshot_record = {
            "bench": record["bench"],
            "generated_at": record["generated_at"],
            "config": record["config"],
            "serial": record["serial"]["metrics"],
            "parallel": [
                {"jobs": row["jobs"], "metrics": row["metrics"]} for row in rows
            ],
        }
        metrics_path = Path(args.metrics_out)
        metrics_path.write_text(
            json.dumps(snapshot_record, indent=2, sort_keys=True) + "\n"
        )
        print(f"wrote metrics snapshot {metrics_path}", file=sys.stderr)
    if not parity_ok:
        print("PARITY MISMATCH between serial and parallel runs", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
