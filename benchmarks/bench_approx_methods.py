"""E15 (extension): the approximate-method landscape.

The paper compares against one approximate method (FBW).  This
extension bench adds the other two classics from its related-work
section — hash-min Winnowing and MinHash+LSH — and measures, on the
same workload, the runtime / result-completeness / ground-truth-recall
trade-off of all three against exact pkwise.

Expected shape: every approximate method is fast; none is complete;
their failure modes differ (FBW locks onto rare error grams, Winnowing
is order-sensitive, MinHash misses banding-unlucky pairs).
"""

from __future__ import annotations

import pytest

from repro import GlobalOrder, PKWiseSearcher, SearchParams
from repro.baselines import FBWSearcher, MinHashLSHSearcher, WinnowingSearcher
from repro.eval import evaluate_quality, run_searcher

from common import workload, write_report

W, TAU = 25, 5

_collected: dict[str, tuple] = {}


def _measure(algorithm: str):
    if algorithm in _collected:
        return _collected[algorithm]
    data, queries, truth = workload("REUTERS", num_queries=16)
    order = GlobalOrder(data, W)
    params = SearchParams(w=W, tau=TAU, k_max=3)
    flat = params.with_k_max(1)
    if algorithm == "pkwise":
        searcher = PKWiseSearcher(data, params, order=order)
    elif algorithm == "fbw":
        searcher = FBWSearcher(data, flat, order=order)
    elif algorithm == "winnowing":
        searcher = WinnowingSearcher(data, flat, order=order)
    elif algorithm == "minhash-lsh":
        searcher = MinHashLSHSearcher(data, flat, order=order)
    else:
        raise ValueError(algorithm)
    run = run_searcher(searcher, queries, name=algorithm)
    report = evaluate_quality(run.results_by_query, truth, W)
    _collected[algorithm] = (run, report)
    return run, report


ALGORITHMS = ["pkwise", "fbw", "winnowing", "minhash-lsh"]


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_approx_methods(benchmark, algorithm):
    run, _report = benchmark.pedantic(
        _measure, args=(algorithm,), rounds=1, iterations=1
    )
    assert run.num_queries > 0


def test_approx_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    lines = [
        f"Extension: approximate methods vs exact pkwise (w={W}, tau={TAU})"
    ]
    lines.append(
        f"{'algorithm':<14}{'avg ms':>9}{'results':>9}{'complete':>10}"
        f"{'recall':>8}{'precision':>11}"
    )
    exact_results = None
    if "pkwise" in _collected:
        exact_results = _collected["pkwise"][0].num_results
    for algorithm in ALGORITHMS:
        entry = _collected.get(algorithm)
        if not entry:
            continue
        run, report = entry
        fraction = (
            run.num_results / exact_results if exact_results else 1.0
        )
        lines.append(
            f"{algorithm:<14}{run.avg_query_seconds * 1e3:>9.2f}"
            f"{run.num_results:>9}{fraction:>10.0%}"
            f"{report.recall:>8.0%}{report.precision:>11.1%}"
        )
    lines.append(
        "shape: only the exact method is complete; approximate methods "
        "trade completeness for speed with distinct failure modes."
    )
    write_report("approx_methods", lines)
