"""E2 / Figure 5: effect of k_max on query processing time (REUTERS).

The paper varies k_max in [1, 5] with (a) w=100, tau in {5..20} and
(b) tau=5, w in {25..100}.  Expected shape: k_max=1 (standard prefix
filtering) is slowest — up to orders of magnitude for loose constraints
at paper scale — while k_max in {3, 4, 5} are close, with larger k_max
paying off for larger tau / smaller w.  Index build time is excluded,
as in the paper (query processing only).
"""

from __future__ import annotations

from functools import lru_cache

import pytest

from repro import PKWiseSearcher, SearchParams
from repro.eval import run_searcher

from common import order_for, workload, write_report

TAU_SWEEP = [2, 5, 8]          # paper: 5, 10, 15, 20 at full scale
W_SWEEP = [25, 50, 100]        # paper: 25, 50, 75, 100
K_MAX_SWEEP = [1, 2, 3, 4, 5]

_collected: dict[tuple, float] = {}


@lru_cache(maxsize=None)
def _searcher(k_max: int, w: int, tau: int) -> PKWiseSearcher:
    data, _queries, _truth = workload("REUTERS")
    params = SearchParams(w=w, tau=tau, k_max=k_max)
    return PKWiseSearcher(data, params, order=order_for("REUTERS", w))


def _run(k_max: int, w: int, tau: int) -> float:
    searcher = _searcher(k_max, w, tau)
    _data, queries, _truth = workload("REUTERS")
    run = run_searcher(searcher, queries)
    _collected[(k_max, w, tau)] = run.avg_query_seconds
    return run.avg_query_seconds


@pytest.mark.parametrize("k_max", K_MAX_SWEEP)
@pytest.mark.parametrize("tau", TAU_SWEEP)
def test_fig5a_vary_tau(benchmark, k_max, tau):
    """Figure 5(a): w fixed at 100, tau varies."""
    _searcher(k_max, 100, tau)  # build outside the timed region
    benchmark.pedantic(_run, args=(k_max, 100, tau), rounds=1, iterations=1)


@pytest.mark.parametrize("k_max", K_MAX_SWEEP)
@pytest.mark.parametrize("w", W_SWEEP)
def test_fig5b_vary_w(benchmark, k_max, w):
    """Figure 5(b): tau fixed at 5, w varies."""
    _searcher(k_max, w, 5)
    benchmark.pedantic(_run, args=(k_max, w, 5), rounds=1, iterations=1)


def test_fig5_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    lines = ["Figure 5: effect of k_max (avg query time, ms; build excluded)"]
    header = "        " + "".join(f"k_max={k:<2}    " for k in K_MAX_SWEEP)

    lines.append("(a) w=100, varying tau")
    lines.append(header)
    for tau in TAU_SWEEP:
        cells = []
        for k_max in K_MAX_SWEEP:
            value = _collected.get((k_max, 100, tau))
            cells.append(f"{value * 1e3:9.2f}  " if value else "      n/a  ")
        lines.append(f"tau={tau:<4}" + "".join(cells))

    lines.append("(b) tau=5, varying w")
    lines.append(header)
    for w in W_SWEEP:
        cells = []
        for k_max in K_MAX_SWEEP:
            value = _collected.get((k_max, w, 5))
            cells.append(f"{value * 1e3:9.2f}  " if value else "      n/a  ")
        lines.append(f"w={w:<6}" + "".join(cells))

    loosest = max(TAU_SWEEP)
    if (1, 100, loosest) in _collected:
        k1 = _collected[(1, 100, loosest)]
        best = min(
            _collected[(k, 100, loosest)]
            for k in K_MAX_SWEEP
            if (k, 100, loosest) in _collected
        )
        lines.append(
            f"shape: k_max=1 vs best at w=100, tau={loosest}: "
            f"{k1 * 1e3:.2f}ms vs {best * 1e3:.2f}ms ({k1 / best:.1f}x slower)"
        )
    write_report("fig5_kmax", lines)
