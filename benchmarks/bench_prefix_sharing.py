"""E14 / Section 7.3 text: adjacent-window prefix sharing.

The paper motivates interval sharing by measuring the average Jaccard
similarity between the prefixes of adjacent windows: 0.966 at (w=100,
tau=5) on REUTERS, falling to 0.872 at w=25, and nearly flat in tau
(0.966 -> 0.963 for tau 5 -> 20).  This bench reproduces the
measurement, plus the fraction of slides where the prefix is literally
unchanged (the maintenance fast path).
"""

from __future__ import annotations

import pytest

from repro import SearchParams
from repro.core.pkwise import default_scheme
from repro.eval import prefix_sharing

from common import order_for, workload, write_report

W_SWEEP = [25, 50, 100]
TAU_SWEEP = [2, 5, 8]

_collected: dict[tuple, object] = {}


def _measure(w: int, tau: int):
    key = (w, tau)
    if key in _collected:
        return _collected[key]
    data, queries, _truth = workload("REUTERS")
    order = order_for("REUTERS", w)
    params = SearchParams(w=w, tau=tau, k_max=4)
    scheme = default_scheme(params, order)
    report = prefix_sharing(queries, order, w, tau, scheme)
    _collected[key] = report
    return report


@pytest.mark.parametrize("w", W_SWEEP)
def test_sharing_vary_w(benchmark, w):
    report = benchmark.pedantic(_measure, args=(w, 5), rounds=1, iterations=1)
    assert 0.0 < report.average_jaccard <= 1.0


@pytest.mark.parametrize("tau", TAU_SWEEP)
def test_sharing_vary_tau(benchmark, tau):
    report = benchmark.pedantic(_measure, args=(100, tau), rounds=1, iterations=1)
    assert 0.0 < report.average_jaccard <= 1.0


def test_sharing_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    lines = ["Section 7.3: adjacent-prefix sharing in query windows"]
    lines.append(f"{'setting':<18}{'avg Jaccard':>12}{'identical':>11}")
    for w in W_SWEEP:
        report = _collected.get((w, 5))
        if report:
            lines.append(
                f"w={w:<4} tau=5      {report.average_jaccard:>11.3f}"
                f"{report.unchanged_fraction:>10.0%}"
            )
    for tau in TAU_SWEEP:
        report = _collected.get((100, tau))
        if report:
            lines.append(
                f"w=100  tau={tau:<6}{report.average_jaccard:>12.3f}"
                f"{report.unchanged_fraction:>10.0%}"
            )
    wide = _collected.get((100, 5))
    narrow = _collected.get((25, 5))
    if wide and narrow:
        lines.append(
            f"shape: sharing grows with w "
            f"({narrow.average_jaccard:.3f} at w=25 -> "
            f"{wide.average_jaccard:.3f} at w=100; paper: 0.872 -> 0.966)"
        )
    write_report("prefix_sharing", lines)
