"""E7 / Figure 9: scalability with dataset size (TREC and PAN profiles).

Samples 20%..100% of the data documents and measures avg query time for
pkwise and Adapt.  Expected shape: both grow roughly linearly; pkwise
grows slower (paper: 3.8x and 7.1x faster at full size).
"""

from __future__ import annotations

import pytest

from repro import GlobalOrder, PKWiseSearcher, SearchParams
from repro.baselines import AdaptSearcher
from repro.eval import run_searcher

from common import pan_workload, workload, write_report

FRACTIONS = [0.2, 0.4, 0.6, 0.8, 1.0]
#: (profile, w, tau) — the paper uses (TREC, 100, 20) and (PAN, 25, 5);
#: tau scaled down with the bench corpus.
CASES = {"TREC": (50, 8), "PAN": (25, 5)}

_collected: dict[tuple, dict[str, float]] = {}


def _measure(profile: str, fraction: float) -> dict[str, float]:
    key = (profile, fraction)
    if key in _collected:
        return _collected[key]
    if profile == "PAN":
        data, queries, _truth = pan_workload()
    else:
        data, queries, _truth = workload(profile)
    w, tau = CASES[profile]
    count = max(2, round(fraction * len(data)))
    sample = data.subset(range(count))
    order = GlobalOrder(sample, w)
    params = SearchParams(w=w, tau=tau, k_max=4)
    pkwise = run_searcher(
        PKWiseSearcher(sample, params, order=order), queries, name="pkwise"
    )
    adapt = run_searcher(
        AdaptSearcher(sample, params.with_k_max(1), order=order),
        queries,
        name="adapt",
    )
    result = {
        "pkwise": pkwise.avg_query_seconds,
        "adapt": adapt.avg_query_seconds,
    }
    _collected[key] = result
    return result


@pytest.mark.parametrize("profile", ["TREC", "PAN"])
@pytest.mark.parametrize("fraction", FRACTIONS)
def test_fig9_scalability(benchmark, profile, fraction):
    result = benchmark.pedantic(
        _measure, args=(profile, fraction), rounds=1, iterations=1
    )
    assert result["pkwise"] > 0


def test_fig9_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    lines = ["Figure 9: scalability with dataset size (avg query ms)"]
    for profile in ("TREC", "PAN"):
        w, tau = CASES[profile]
        lines.append(f"-- {profile} (w={w}, tau={tau})")
        lines.append(f"{'fraction':<10}{'pkwise':>10}{'adapt':>10}{'speedup':>9}")
        for fraction in FRACTIONS:
            times = _collected.get((profile, fraction))
            if not times:
                continue
            lines.append(
                f"{fraction:<10.0%}{times['pkwise'] * 1e3:>10.2f}"
                f"{times['adapt'] * 1e3:>10.2f}"
                f"{times['adapt'] / times['pkwise']:>8.1f}x"
            )
    write_report("fig9_scalability", lines)
