"""E10 / Table 3: precision and recall on REUTERS and TREC profiles.

Runs pkwise (exact — Adapt and Faerie share its quality by definition)
and FBW at the paper's two settings, (w=25, tau=5) and (w=50, tau=10),
against the injected ground truth.  Expected shape: the looser setting
(w=25) trades precision for much higher recall; FBW's recall is far
below pkwise's (the paper: FBW misses at least half of true results on
REUTERS).
"""

from __future__ import annotations

import pytest

from repro import PKWiseSearcher, SearchParams
from repro.baselines import FBWSearcher
from repro.eval import evaluate_quality, run_searcher

from common import order_for, workload, write_report

SETTINGS = [(25, 5), (50, 10)]

_collected: dict[tuple, object] = {}


def _measure(profile: str, algorithm: str, w: int, tau: int):
    key = (profile, algorithm, w, tau)
    if key in _collected:
        return _collected[key]
    # 16 queries -> 4 ground-truth cases per obfuscation level.
    data, queries, truth = workload(profile, num_queries=16)
    order = order_for(profile, w)
    params = SearchParams(w=w, tau=tau, k_max=3)
    if algorithm == "pkwise":
        searcher = PKWiseSearcher(data, params, order=order)
    else:
        searcher = FBWSearcher(data, params.with_k_max(1), order=order)
    run = run_searcher(searcher, queries, name=algorithm)
    report = evaluate_quality(run.results_by_query, truth, w)
    _collected[key] = report
    return report


@pytest.mark.parametrize("profile", ["REUTERS", "TREC"])
@pytest.mark.parametrize("algorithm", ["pkwise", "fbw"])
@pytest.mark.parametrize("w,tau", SETTINGS)
def test_table3_quality(benchmark, profile, algorithm, w, tau):
    report = benchmark.pedantic(
        _measure, args=(profile, algorithm, w, tau), rounds=1, iterations=1
    )
    assert 0.0 <= report.recall <= 1.0


def test_table3_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    lines = ["Table 3: precision/recall on REUTERS and TREC profiles"]
    lines.append(
        f"{'algorithm':<26}{'REUTERS prec':>13}{'REUTERS rec':>13}"
        f"{'TREC prec':>11}{'TREC rec':>10}"
    )
    for algorithm in ("pkwise", "fbw"):
        for w, tau in SETTINGS:
            reuters = _collected.get(("REUTERS", algorithm, w, tau))
            trec = _collected.get(("TREC", algorithm, w, tau))
            if not (reuters and trec):
                continue
            lines.append(
                f"{algorithm} (w={w}, tau={tau})".ljust(26)
                + f"{reuters.precision:>12.1%}{reuters.recall:>13.1%}"
                + f"{trec.precision:>11.1%}{trec.recall:>10.1%}"
            )
    pk = _collected.get(("REUTERS", "pkwise", 25, 5))
    fbw = _collected.get(("REUTERS", "fbw", 25, 5))
    if pk and fbw:
        lines.append(
            f"shape: FBW recall {fbw.recall:.0%} <= pkwise recall "
            f"{pk.recall:.0%} (approximate method misses results)"
        )
    write_report("table3_quality", lines)
