"""E11 / Figure 12: precision/recall by plagiarism type (PAN profile).

Generates separate query sets for each PAN plagiarism type (artificial
with none/low/high obfuscation, simulated) and scores pkwise and FBW at
the paper's two settings.  Expected shape: (w=25, tau=5) reaches ~100%
recall on artificial plagiarism and stays high on simulated; FBW's
recall collapses for heavily obfuscated types because its rare-gram
fingerprints are exactly the grams obfuscation perturbs.
"""

from __future__ import annotations

import pytest

from repro import PKWiseSearcher, SearchParams
from repro.baselines import FBWSearcher
from repro.corpus.plagiarism import ObfuscationLevel
from repro.corpus.synthetic import ReuseSpec
from repro.eval import evaluate_quality, run_searcher

from common import workload, write_report

SETTINGS = [(25, 5), (50, 10)]
LEVELS = [
    ObfuscationLevel.NONE,
    ObfuscationLevel.LOW,
    ObfuscationLevel.HIGH,
    ObfuscationLevel.SIMULATED,
]

_collected: dict[tuple, object] = {}


def _measure(algorithm: str, w: int, tau: int):
    """One run covering all levels (ground truth carries the level)."""
    key = (algorithm, w, tau)
    if key in _collected:
        return _collected[key]
    # The level-dependence of quality comes from the injection, not the
    # corpus statistics, so the (faster) REUTERS-profile corpus carries
    # the PAN-style four-level injection mix here; see DESIGN.md.
    data, queries, truth = workload(
        "REUTERS",
        seed=31,
        segment_length=120,
        levels=tuple(LEVELS),
        num_queries=16,  # 4 ground-truth cases per obfuscation level
    )
    from repro import GlobalOrder

    order = GlobalOrder(data, w)
    params = SearchParams(w=w, tau=tau, k_max=3)
    if algorithm == "pkwise":
        searcher = PKWiseSearcher(data, params, order=order)
    else:
        searcher = FBWSearcher(data, params.with_k_max(1), order=order)
    run = run_searcher(searcher, queries, name=algorithm)
    report = evaluate_quality(run.results_by_query, truth, w)
    _collected[key] = report
    return report


@pytest.mark.parametrize("algorithm", ["pkwise", "fbw"])
@pytest.mark.parametrize("w,tau", SETTINGS)
def test_fig12_levels(benchmark, algorithm, w, tau):
    report = benchmark.pedantic(
        _measure, args=(algorithm, w, tau), rounds=1, iterations=1
    )
    assert 0.0 <= report.recall <= 1.0


def test_fig12_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    lines = ["Figure 12: recall by plagiarism type (PAN-style injection)"]
    header = f"{'algorithm':<26}" + "".join(
        f"{level.value:>11}" for level in LEVELS
    ) + f"{'precision':>11}"
    lines.append(header)
    for w, tau in SETTINGS:
        for algorithm in ("pkwise", "fbw"):
            report = _collected.get((algorithm, w, tau))
            if report is None:
                continue
            cells = "".join(
                f"{report.recall_by_level.get(level, 0.0):>11.0%}"
                for level in LEVELS
            )
            lines.append(
                f"{algorithm} (w={w}, tau={tau})".ljust(26)
                + cells
                + f"{report.precision:>11.1%}"
            )
    pk = _collected.get(("pkwise", 25, 5))
    fbw = _collected.get(("fbw", 25, 5))
    if pk and fbw:
        sim = ObfuscationLevel.SIMULATED
        lines.append(
            f"shape: simulated-plagiarism recall pkwise "
            f"{pk.recall_by_level.get(sim, 0.0):.0%} vs FBW "
            f"{fbw.recall_by_level.get(sim, 0.0):.0%}"
        )
    write_report("fig12_pan_quality", lines)
