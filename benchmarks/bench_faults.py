#!/usr/bin/env python
"""Fault-tolerance costs: disabled-path overhead and crash-recovery price.

Three questions, answered on the fig8-style synthetic workload:

1. **What does the fault layer cost when off?**  A microbenchmark of
   :func:`repro.faults.inject` with no plan installed (the production
   configuration), plus a serial workload run for scale — the target is
   well under 1% of query time.
2. **What does an armed-but-silent plan cost?**  The same parallel run
   with a plan installed whose specs match nothing, so every injection
   point pays the full lookup.
3. **What does recovering from a worker kill cost?**  One worker is
   killed mid-run (deterministic, single-trigger via a ledger); the
   run must finish with zero quarantined queries, results identical to
   the clean run, and the slowdown is reported as ``recovery_cost``.

Emits ``BENCH_faults.json`` at the repo root; ``--metrics-out`` writes
the snapshot layout ``benchmarks/check_regression.py`` diffs.  Exits
non-zero on any parity failure or unrecovered kill, so the CI
``fault-injection`` job doubles as a correctness gate.

Usage::

    PYTHONPATH=src python benchmarks/bench_faults.py
    PYTHONPATH=src python benchmarks/bench_faults.py --tiny   # CI smoke

Standalone script (not a pytest bench): spawn-mode workers re-import
``__main__``, which needs a real file with an ``if __name__`` guard.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import tempfile
import time
import timeit
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent


def _ensure_importable() -> None:
    sys.path.insert(0, str(Path(__file__).resolve().parent))
    try:
        import repro  # noqa: F401
    except ImportError:
        sys.path.insert(0, str(ROOT / "src"))


def build_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument("--profile", default="REUTERS",
                        help="synthetic dataset profile (default REUTERS)")
    parser.add_argument("-w", "--window", type=int, default=50)
    parser.add_argument("--tau", type=int, default=5)
    parser.add_argument("--jobs", type=int, default=2,
                        help="workers for the parallel runs (default 2)")
    parser.add_argument("--rounds", type=int, default=3,
                        help="measurement rounds per setting; best is kept")
    parser.add_argument("--inject-calls", type=int, default=200_000,
                        help="microbenchmark iterations for the disabled "
                             "inject() path")
    parser.add_argument("--start-method", default=None,
                        choices=[None, "fork", "spawn"],
                        help="multiprocessing start method (default: fork "
                             "where available)")
    parser.add_argument("--tiny", action="store_true",
                        help="smoke-test scale (CI): tiny corpus, 1 round")
    parser.add_argument("--out", default=str(ROOT / "BENCH_faults.json"),
                        help="output JSON path (default: repo root)")
    parser.add_argument("--metrics-out", default=None,
                        help="also write a standalone repro.obs metrics "
                             "snapshot to this path (the format "
                             "benchmarks/check_regression.py diffs)")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_arg_parser().parse_args(argv)
    if args.tiny:
        # Must be set before importing benchmarks/common (reads it once).
        os.environ.setdefault("REPRO_BENCH_SCALE", "0.25")
        args.rounds = 1
        args.inject_calls = min(args.inject_calls, 50_000)
    _ensure_importable()

    from common import workload

    from repro import (
        FaultPlan,
        FaultSpec,
        ParallelExecutor,
        PKWiseSearcher,
        SearchParams,
        faults,
    )
    from repro.eval import run_searcher

    num_queries = 4 if args.tiny else 8
    data, queries, _truth = workload(args.profile, num_queries=num_queries)
    params = SearchParams(w=args.window, tau=args.tau, k_max=4)
    searcher = PKWiseSearcher(data, params)
    executor = ParallelExecutor(
        jobs=args.jobs, start_method=args.start_method, retry_backoff=0.0
    )

    print(
        f"profile={args.profile} docs={len(data)} queries={len(queries)} "
        f"w={params.w} tau={params.tau} jobs={args.jobs} "
        f"start_method={executor.start_method}",
        file=sys.stderr,
    )

    # ------------------------------------------------------------------
    # 1. Disabled path: inject() with no plan installed
    # ------------------------------------------------------------------
    faults.clear_plan()
    inject_seconds = timeit.timeit(
        lambda: faults.inject("bench.point", position=0),
        number=args.inject_calls,
    )
    inject_ns = inject_seconds / args.inject_calls * 1e9

    serial_run = min(
        (run_searcher(searcher, queries, name="faults-serial")
         for _ in range(args.rounds)),
        key=lambda run: run.total_seconds,
    )
    per_query_seconds = serial_run.total_seconds / max(1, len(queries))
    # One injection site fires per query plus one per chunk; even an
    # absurd 100 calls/query keeps the disabled layer deep below 1%.
    disabled_fraction = (
        (inject_seconds / args.inject_calls * 100) / per_query_seconds
        if per_query_seconds > 0 else 0.0
    )

    clean_run = min(
        (executor.run_workload(searcher, queries, name="faults-clean")
         for _ in range(args.rounds)),
        key=lambda run: run.total_seconds,
    )
    clean_parity = clean_run.results_by_query == serial_run.results_by_query

    # ------------------------------------------------------------------
    # 2. Armed-but-silent plan (specs never match)
    # ------------------------------------------------------------------
    faults.install_plan(
        FaultPlan(
            [
                FaultSpec(point="parallel.worker.query", kind="raise",
                          match={"position": -999}),
                FaultSpec(point="parallel.worker.chunk", kind="raise",
                          match={"chunk_index": -999}),
            ]
        )
    )
    try:
        silent_run = min(
            (executor.run_workload(searcher, queries, name="faults-silent")
             for _ in range(args.rounds)),
            key=lambda run: run.total_seconds,
        )
    finally:
        faults.clear_plan()
    silent_parity = silent_run.results_by_query == serial_run.results_by_query
    silent_overhead = (
        silent_run.total_seconds / clean_run.total_seconds - 1.0
        if clean_run.total_seconds > 0 else 0.0
    )

    # ------------------------------------------------------------------
    # 3. One worker kill, recovered
    # ------------------------------------------------------------------
    kill_position = len(queries) // 2
    with tempfile.TemporaryDirectory(prefix="bench-faults-") as ledger_dir:
        faults.install_plan(
            FaultPlan(
                [
                    FaultSpec(point="parallel.worker.query", kind="kill",
                              match={"position": kill_position},
                              max_triggers=1),
                ],
                ledger=Path(ledger_dir) / "ledger",
            )
        )
        try:
            kill_started = time.perf_counter()
            kill_run = executor.run_workload(
                searcher, queries, name="faults-kill"
            )
            kill_seconds = time.perf_counter() - kill_started
        finally:
            faults.clear_plan()
    kill_parity = kill_run.results_by_query == serial_run.results_by_query
    recovered = (
        not kill_run.failures
        and kill_run.recovery is not None
        and kill_run.recovery.pool_restarts >= 1
    )
    recovery_cost = (
        kill_seconds / clean_run.total_seconds
        if clean_run.total_seconds > 0 else 0.0
    )

    parity_ok = clean_parity and silent_parity and kill_parity
    print(
        f"inject(disabled) {inject_ns:7.1f}ns/call "
        f"(~{disabled_fraction * 100:.4f}% of a query at 100 calls/query)\n"
        f"silent plan overhead {silent_overhead * 100:+6.2f}% "
        f"(clean {clean_run.total_seconds * 1e3:.1f}ms, "
        f"silent {silent_run.total_seconds * 1e3:.1f}ms)\n"
        f"kill recovery {kill_seconds * 1e3:9.1f}ms "
        f"({recovery_cost:.2f}x clean, "
        f"restarts={kill_run.recovery.pool_restarts if kill_run.recovery else 0}, "
        f"recovered={'yes' if recovered else 'NO'})  "
        f"parity={'ok' if parity_ok else 'MISMATCH'}",
        file=sys.stderr,
    )

    record = {
        "bench": "faults",
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "host": {
            "cpus": os.cpu_count(),
            "platform": platform.platform(),
            "python": platform.python_version(),
            "start_method": executor.start_method,
        },
        "config": {
            "profile": args.profile,
            "num_documents": len(data),
            "num_queries": len(queries),
            "w": params.w,
            "tau": params.tau,
            "k_max": params.k_max,
            "jobs": args.jobs,
            "rounds": args.rounds,
            "tiny": args.tiny,
        },
        "disabled": {
            "inject_ns_per_call": inject_ns,
            "inject_calls": args.inject_calls,
            "fraction_of_query_at_100_calls": disabled_fraction,
            "target": "well under 0.01 (1%) of per-query time",
        },
        "silent_plan": {
            "overhead_fraction": silent_overhead,
            "seconds": silent_run.total_seconds,
            "parity": silent_parity,
        },
        "kill_recovery": {
            "seconds": kill_seconds,
            "clean_seconds": clean_run.total_seconds,
            "recovery_cost": recovery_cost,
            "recovered": recovered,
            "quarantined": len(kill_run.failures),
            "pool_restarts": (
                kill_run.recovery.pool_restarts if kill_run.recovery else 0
            ),
            "parity": kill_parity,
            "metrics": kill_run.metrics_snapshot(),
        },
        "serial": {
            "search_seconds": serial_run.total_seconds,
            "num_results": serial_run.num_results,
            "metrics": serial_run.metrics_snapshot(),
        },
        "parallel": [
            {
                "jobs": args.jobs,
                "search_seconds": clean_run.total_seconds,
                "parity": clean_parity,
                "metrics": clean_run.metrics_snapshot(),
            }
        ],
        "parity_ok": parity_ok,
        "note": "silent-plan overhead is wall-clock noise-bound; the "
                "disabled microbenchmark is the stable overhead figure",
    }
    out_path = Path(args.out)
    out_path.write_text(json.dumps(record, indent=2) + "\n")
    print(f"wrote {out_path}", file=sys.stderr)
    if args.metrics_out:
        snapshot_record = {
            "bench": record["bench"],
            "generated_at": record["generated_at"],
            "config": record["config"],
            "serial": record["serial"]["metrics"],
            "parallel": [
                {"jobs": args.jobs, "metrics": clean_run.metrics_snapshot()}
            ],
        }
        metrics_path = Path(args.metrics_out)
        metrics_path.write_text(
            json.dumps(snapshot_record, indent=2, sort_keys=True) + "\n"
        )
        print(f"wrote metrics snapshot {metrics_path}", file=sys.stderr)
    if not parity_ok:
        print("PARITY MISMATCH against the serial run", file=sys.stderr)
        return 1
    if not recovered:
        print("KILL NOT RECOVERED (failures or no pool restart)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
