"""E9 / Figure 11 (Appendix D.1): greedy vs equi-width partitioning.

Runs the cost-model-driven greedy partitioner and the naive equi-width
split under the same workload, then compares actual query processing
time with each scheme.  Expected shape: greedy is never worse and
typically 2-4.7x faster, with the gap largest for small w.
"""

from __future__ import annotations

import pytest

from repro import (
    GreedyPartitioner,
    PKWiseSearcher,
    SearchParams,
    equi_width_scheme,
)
from repro.eval import run_searcher
from repro.partition.cost_model import calibrated_weights

from common import order_for, workload, write_report

SETTINGS = [(25, 5), (50, 8), (100, 8)]
K_MAX = 4

_collected: dict[tuple, dict[str, float]] = {}


def _measure(w: int, tau: int) -> dict[str, float]:
    key = (w, tau)
    if key in _collected:
        return _collected[key]
    data, queries, _truth = workload("REUTERS")
    order = order_for("REUTERS", w)
    params = SearchParams(w=w, tau=tau, k_max=K_MAX)

    # Calibrate the cost-model op weights on this runtime (the paper's
    # constants encode C++ ratios), then run the greedy search on the
    # perturbed surrogate sample.
    seed_partitioner = GreedyPartitioner(
        data, params, order=order, b1_fraction=0.25, b2_fraction=0.1,
        sample_ratio=0.08,
    )
    sample = seed_partitioner.sample_workload()
    weights = calibrated_weights(data, sample, params, order)
    partitioner = GreedyPartitioner(
        data, params, order=order, weights=weights,
        b1_fraction=0.25, b2_fraction=0.1, sample_ratio=0.08,
    )
    greedy_scheme, report = partitioner.partition(workload=sample)
    equi = equi_width_scheme(order.universe_size, params.k_max)

    greedy_searcher = PKWiseSearcher(data, params, scheme=greedy_scheme, order=order)
    equi_searcher = PKWiseSearcher(data, params, scheme=equi, order=order)
    # Warm up, then take the best of two interleaved runs per scheme.
    run_searcher(greedy_searcher, queries[:2])
    run_searcher(equi_searcher, queries[:2])
    greedy_seconds = min(
        run_searcher(greedy_searcher, queries, name="greedy").avg_query_seconds
        for _ in range(2)
    )
    equi_seconds = min(
        run_searcher(equi_searcher, queries, name="equi-width").avg_query_seconds
        for _ in range(2)
    )
    result = {
        "greedy": greedy_seconds,
        "equi": equi_seconds,
        "evaluations": report.evaluations,
        "borders": greedy_scheme.borders,
    }
    _collected[key] = result
    return result


@pytest.mark.parametrize("w,tau", SETTINGS)
def test_fig11_greedy_vs_equiwidth(benchmark, w, tau):
    result = benchmark.pedantic(_measure, args=(w, tau), rounds=1, iterations=1)
    assert result["greedy"] > 0


def test_fig11_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    lines = ["Figure 11: greedy vs equi-width partitioning (avg query ms)"]
    lines.append(
        f"{'setting':<18}{'greedy':>10}{'equi-width':>12}{'speedup':>9}"
        f"   borders (cost evals)"
    )
    for w, tau in SETTINGS:
        result = _collected.get((w, tau))
        if not result:
            continue
        lines.append(
            f"w={w:<5} tau={tau:<7}"
            f"{result['greedy'] * 1e3:>10.2f}{result['equi'] * 1e3:>12.2f}"
            f"{result['equi'] / result['greedy']:>8.1f}x"
            f"   {result['borders']} ({result['evaluations']})"
        )
    write_report("fig11_partitioning", lines)
