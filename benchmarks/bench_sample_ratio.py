"""E12 / Section 7.1 text: sample-ratio robustness of partitioning.

The paper reports that varying the surrogate-workload sample ratio from
0.5% to 2.5% barely moves query time (4.64ms..4.39ms on REUTERS).  This
bench sweeps the ratio and measures query time with each resulting
scheme.  Expected shape: a flat curve.
"""

from __future__ import annotations

import pytest

from repro import GreedyPartitioner, PKWiseSearcher, SearchParams
from repro.eval import run_searcher

from common import order_for, workload, write_report

RATIOS = [0.02, 0.05, 0.10, 0.20]  # scaled up vs paper's 0.5%-2.5%
W, TAU = 50, 3                      # because the bench corpus is tiny

_collected: dict[float, float] = {}


def _measure(ratio: float) -> float:
    if ratio in _collected:
        return _collected[ratio]
    data, queries, _truth = workload("REUTERS")
    order = order_for("REUTERS", W)
    params = SearchParams(w=W, tau=TAU, k_max=3)
    partitioner = GreedyPartitioner(
        data, params, order=order, b1_fraction=0.34, b2_fraction=0.17,
        sample_ratio=ratio, seed=5,
    )
    scheme, _report = partitioner.partition()
    searcher = PKWiseSearcher(data, params, scheme=scheme, order=order)
    run_searcher(searcher, queries[:2])  # warm-up
    seconds = min(
        run_searcher(searcher, queries).avg_query_seconds for _ in range(3)
    )
    _collected[ratio] = seconds
    return seconds


@pytest.mark.parametrize("ratio", RATIOS)
def test_sample_ratio(benchmark, ratio):
    benchmark.pedantic(_measure, args=(ratio,), rounds=1, iterations=1)


def test_sample_ratio_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    lines = [
        "Section 7.1: effect of workload sample ratio on query time "
        f"(w={W}, tau={TAU})"
    ]
    lines.append(f"{'ratio':<10}{'avg query ms':>14}")
    for ratio in RATIOS:
        value = _collected.get(ratio)
        if value is not None:
            lines.append(f"{ratio:<10.1%}{value * 1e3:>14.2f}")
    values = [v for v in _collected.values()]
    if len(values) >= 2:
        spread = max(values) / min(values)
        lines.append(f"shape: max/min spread {spread:.2f}x (paper: ~1.06x, flat)")
    write_report("sample_ratio", lines)
