"""E13 / Section 3.1 ablation: choice of fixed k for non-partitioned k-wise.

The paper states that k = 3 gives the best runtime for most (w, tau)
settings when a single fixed k is used (which then motivates mixing k's
via partitioning).  This bench sweeps k in {1..4} for non-partitioned
k-wise signatures.  Expected shape: intermediate k wins; k=1 loses on
candidates, large k loses on combination counts.
"""

from __future__ import annotations

from functools import lru_cache

import pytest

from repro import PartitionScheme, PKWiseSearcher, SearchParams
from repro.eval import run_searcher

from common import order_for, workload, write_report

K_SWEEP = [1, 2, 3, 4]
SETTINGS = [(50, 5), (100, 5)]

_collected: dict[tuple, float] = {}


@lru_cache(maxsize=None)
def _searcher(k: int, w: int, tau: int) -> PKWiseSearcher:
    data, _queries, _truth = workload("REUTERS")
    order = order_for("REUTERS", w)
    params = SearchParams(w=w, tau=tau, k_max=k)
    scheme = PartitionScheme.all_k(order.universe_size, k)
    return PKWiseSearcher(data, params, scheme=scheme, order=order)


def _run(k: int, w: int, tau: int) -> float:
    searcher = _searcher(k, w, tau)
    _data, queries, _truth = workload("REUTERS")
    run = run_searcher(searcher, queries)
    _collected[(k, w, tau)] = run.avg_query_seconds
    return run.avg_query_seconds


@pytest.mark.parametrize("k", K_SWEEP)
@pytest.mark.parametrize("w,tau", SETTINGS)
def test_ablation_fixed_k(benchmark, k, w, tau):
    _searcher(k, w, tau)
    benchmark.pedantic(_run, args=(k, w, tau), rounds=1, iterations=1)


def test_ablation_k_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    lines = ["Section 3.1 ablation: fixed k for non-partitioned k-wise (ms)"]
    lines.append(f"{'setting':<18}" + "".join(f"k={k:<10}" for k in K_SWEEP))
    for w, tau in SETTINGS:
        cells = []
        for k in K_SWEEP:
            value = _collected.get((k, w, tau))
            cells.append(f"{value * 1e3:<12.2f}" if value else f"{'n/a':<12}")
        lines.append(f"w={w:<5} tau={tau:<7}" + "".join(cells))
    write_report("ablation_k", lines)
