#!/usr/bin/env python
"""Fingerprint routing tier: pruning power and net speedup.

The routing tier exists for one economic claim: on corpora where most
documents are unrelated to a query, a vectorized fingerprint pass over
flat ``uint64`` columns is far cheaper than letting the exact engine
discover the same irrelevance window by window.  This bench measures
that claim at two corpus sizes of the same profile:

* **Pruned fraction** — ``routing_pruned_docs / routing_checked_docs``
  over the workload: how much of the corpus the tier eliminated before
  any window-level work.
* **Net speedup** — wall-clock of the routed run vs the routing-off
  run over identical queries, fingerprint time *included* (the tier
  must pay for itself, not just look busy).
* **Recall** — asserted, not measured: ``exact`` mode must return
  pair-for-pair the routing-off results (the bench exits 1 on any
  divergence).  ``approx`` mode is reported informationally with its
  measured recall.

Larger corpora favour routing (query-side signature cost is constant
while doc-side work grows), which is why the gates in CI are applied
to the *largest* size via ``check_regression.py
--min-pruned-fraction/--min-routing-speedup``.

Emits ``BENCH_routing.json`` at the repo root with a ``routing``
section (the gate input), per-size rows, and a ``serial`` metrics
section in the layout ``benchmarks/check_regression.py`` diffs.

Usage::

    PYTHONPATH=src python benchmarks/bench_routing.py
    PYTHONPATH=src python benchmarks/bench_routing.py --smoke  # CI
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent

#: REUTERS base scale from benchmarks/common.py, applied under the
#: global REPRO_BENCH_SCALE multiplier like every other bench.
BASE_SCALE = 0.008


def build_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument("--profile", default="REUTERS",
                        help="synthetic dataset profile (default REUTERS)")
    parser.add_argument("-w", "--window", type=int, default=50)
    parser.add_argument("--tau", type=int, default=5)
    parser.add_argument("--k-max", type=int, default=4)
    parser.add_argument("--block-tokens", type=int, default=64,
                        help="routing block size (64 keeps covers "
                             "unsaturated at w=50; see docs/tuning.md)")
    parser.add_argument("--sizes", default="1.0,2.5",
                        help="comma-separated corpus scale multipliers "
                             "(gates apply to the largest)")
    parser.add_argument("--num-queries", type=int, default=8)
    parser.add_argument("--repeats", type=int, default=3,
                        help="workload repeats per timing (min is kept)")
    parser.add_argument("--smoke", action="store_true",
                        help="single repeat for CI wall-clock")
    parser.add_argument("--approx", action="store_true",
                        help="also report approx mode at the largest "
                             "size (informational: measured recall)")
    parser.add_argument("--out", type=Path, default=ROOT / "BENCH_routing.json",
                        help="output JSON path (default repo root)")
    parser.add_argument("--metrics-out", type=Path, default=None,
                        help="also write the bare metrics snapshot here")
    parser.add_argument("--min-pruned-fraction", type=float, default=None,
                        help="fail when the largest size prunes less "
                             "than this fraction of documents")
    parser.add_argument("--min-routing-speedup", type=float, default=None,
                        help="fail when the largest size's net routed "
                             "speedup is below this floor")
    return parser


def timed_run(searcher, queries, *, repeats: int, name: str):
    """(best wall-clock seconds, last WorkloadRun) over ``repeats``."""
    from repro.eval import run_searcher

    best = None
    run = None
    for _ in range(repeats):
        start = time.perf_counter()
        run = run_searcher(searcher, queries, name=name)
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
    return best, run


def main(argv: list[str] | None = None) -> int:
    sys.path.insert(0, str(Path(__file__).resolve().parent))
    try:
        import repro  # noqa: F401
    except ImportError:
        sys.path.insert(0, str(ROOT / "src"))

    from common import BENCH_SCALE  # noqa: E402  (benchmarks dir import)

    from repro import PKWiseSearcher, RoutingPolicy, SearchParams
    from repro.corpus.plagiarism import ObfuscationLevel
    from repro.corpus.synthetic import ReuseSpec, make_profile_collection

    args = build_arg_parser().parse_args(argv)
    repeats = 1 if args.smoke else args.repeats
    sizes = sorted(float(s) for s in args.sizes.split(","))
    params = SearchParams(w=args.window, tau=args.tau, k_max=args.k_max)
    policy = RoutingPolicy(mode="exact", block_tokens=args.block_tokens)

    rows = []
    largest = None
    for size in sizes:
        data, queries, _truth = make_profile_collection(
            args.profile,
            scale=BASE_SCALE * BENCH_SCALE * size,
            seed=7,
            reuse=ReuseSpec(
                segment_length=150,
                levels=(
                    ObfuscationLevel.NONE,
                    ObfuscationLevel.LOW,
                    ObfuscationLevel.HIGH,
                    ObfuscationLevel.SIMULATED,
                ),
            ),
            num_queries=args.num_queries,
        )
        off = PKWiseSearcher(data, params.with_routing("off"))
        build_start = time.perf_counter()
        routed = PKWiseSearcher(data, params.with_routing(policy))
        build_seconds = time.perf_counter() - build_start

        off_seconds, off_run = timed_run(off, queries, repeats=repeats, name="off")
        routed_seconds, routed_run = timed_run(
            routed, queries, repeats=repeats, name="routed"
        )
        if routed_run.results_by_query != off_run.results_by_query:
            print("PARITY FAILURE: exact routing changed the result set",
                  file=sys.stderr)
            return 1

        stats = routed_run.stats
        pruned_fraction = stats.routing_pruned_docs / max(
            1, stats.routing_checked_docs
        )
        speedup = off_seconds / routed_seconds if routed_seconds > 0 else 0.0
        row = {
            "size_multiplier": size,
            "num_documents": len(data),
            "num_tokens": sum(len(doc) for doc in data),
            "num_queries": len(queries),
            "build_seconds": build_seconds,
            "off_seconds": off_seconds,
            "routed_seconds": routed_seconds,
            "off_qps": len(queries) / off_seconds,
            "routed_qps": len(queries) / routed_seconds,
            "net_speedup": speedup,
            "pruned_fraction": pruned_fraction,
            "routing_checked_docs": stats.routing_checked_docs,
            "routing_pruned_docs": stats.routing_pruned_docs,
            "fingerprint_seconds": stats.routing_fingerprint_time,
            "recall": 1.0,  # asserted pair-for-pair above
        }
        rows.append(row)
        largest = (row, off_run, routed_run, data, queries, off)

    row, off_run, routed_run, data, queries, off = largest

    approx_row = None
    if args.approx:
        from repro.eval.harness import canonical_pair_order

        approx = PKWiseSearcher(
            data, params.with_routing(policy.with_mode("approx"))
        )
        approx_seconds, approx_run = timed_run(
            approx, queries, repeats=repeats, name="approx"
        )
        want = {
            qid: canonical_pair_order(pairs)
            for qid, pairs in off_run.results_by_query.items()
        }
        found = sum(
            len(set(approx_run.results_by_query.get(qid, ())) & set(pairs))
            for qid, pairs in want.items()
        )
        total = sum(len(pairs) for pairs in want.values())
        approx_stats = approx_run.stats
        approx_row = {
            "routed_seconds": approx_seconds,
            "net_speedup": row["off_seconds"] / approx_seconds,
            "pruned_fraction": approx_stats.routing_pruned_docs
            / max(1, approx_stats.routing_checked_docs),
            "recall": found / total if total else 1.0,
        }

    print(f"profile {args.profile}, w={params.w} tau={params.tau} "
          f"k_max={params.k_max}, block_tokens={args.block_tokens}, "
          f"repeats={repeats}")
    header = (f"{'size':>6} {'docs':>6} {'off qps':>9} {'routed qps':>11} "
              f"{'speedup':>8} {'pruned':>8}")
    print(header)
    for entry in rows:
        print(f"{entry['size_multiplier']:>6.1f} {entry['num_documents']:>6} "
              f"{entry['off_qps']:>9.1f} {entry['routed_qps']:>11.1f} "
              f"{entry['net_speedup']:>7.2f}x {entry['pruned_fraction']:>7.1%}")
    if approx_row is not None:
        print(f"approx mode at largest size: {approx_row['net_speedup']:.2f}x, "
              f"pruned {approx_row['pruned_fraction']:.1%}, "
              f"recall {approx_row['recall']:.3f}")

    record = {
        "bench": "routing",
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "host": {
            "cpus": os.cpu_count(),
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "config": {
            "profile": args.profile,
            "num_documents": row["num_documents"],
            "num_queries": row["num_queries"],
            "w": params.w,
            "tau": params.tau,
            "k_max": params.k_max,
            "block_tokens": args.block_tokens,
            "sizes": sizes,
            "smoke": args.smoke,
        },
        "sizes": rows,
        # The gate section check_regression.py reads: the largest size's
        # pruning power and net speedup (exact mode, recall asserted).
        "routing": {
            "mode": "exact",
            "pruned_fraction": row["pruned_fraction"],
            "net_speedup": row["net_speedup"],
            "off_qps": row["off_qps"],
            "routed_qps": row["routed_qps"],
            "recall": 1.0,
        },
        # The layout check_regression.py diffs: counters exact, timers
        # within tolerance.  The routed run carries the routing.*
        # counter family on top of the off run's counters.
        "serial": {"metrics": routed_run.metrics_snapshot()},
    }
    if approx_row is not None:
        record["approx"] = approx_row
    args.out.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    print(f"wrote {args.out}")
    if args.metrics_out:
        args.metrics_out.write_text(
            json.dumps(
                {
                    "config": record["config"],
                    "routing": record["routing"],
                    "serial": record["serial"],
                },
                indent=2,
                sort_keys=True,
            )
            + "\n"
        )
        print(f"wrote {args.metrics_out}")

    failures = []
    if (args.min_pruned_fraction is not None
            and row["pruned_fraction"] < args.min_pruned_fraction):
        failures.append(
            f"pruned fraction {row['pruned_fraction']:.2%} below required "
            f"{args.min_pruned_fraction:.2%}"
        )
    if (args.min_routing_speedup is not None
            and row["net_speedup"] < args.min_routing_speedup):
        failures.append(
            f"net speedup {row['net_speedup']:.2f}x below required "
            f"{args.min_routing_speedup}x"
        )
    for failure in failures:
        print(f"GATE FAILURE: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
