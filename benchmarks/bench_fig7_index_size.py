"""E4 / Figure 7: index sizes (REUTERS and TREC).

Index size is measured in abstract postings entries (one entry per
(signature, interval) for pkwise, per (key, window) for Adapt/Faerie,
per stored fingerprint for FBW), which is proportional to bytes across
all four structures.  Expected shape: Adapt and Faerie are identical and
largest (they index every token of every window), pkwise is the smallest
exact index (prefix-only + interval compression, paper: 3.5-86.7x
smaller), FBW is smallest overall but approximate.
"""

from __future__ import annotations

import pytest

from repro import PKWiseSearcher, SearchParams
from repro.baselines import AdaptSearcher, FaerieSearcher, FBWSearcher

from common import order_for, workload, write_report

TAU_SWEEP = [2, 5, 8]
W_SWEEP = [25, 50, 100]

_collected: dict[tuple, dict[str, int]] = {}


def _measure(profile: str, w: int, tau: int) -> dict[str, int]:
    key = (profile, w, tau)
    if key in _collected:
        return _collected[key]
    data, _queries, _truth = workload(profile)
    order = order_for(profile, w)
    params = SearchParams(w=w, tau=tau, k_max=4)
    flat = params.with_k_max(1)
    sizes = {
        "pkwise": PKWiseSearcher(data, params, order=order).index.size_in_entries(),
        "adapt": AdaptSearcher(data, flat, order=order).index_entries,
        "faerie": FaerieSearcher(data, flat, order=order).index_entries,
        "fbw": FBWSearcher(data, flat, order=order).index_entries,
    }
    _collected[key] = sizes
    return sizes


@pytest.mark.parametrize("profile", ["REUTERS", "TREC"])
@pytest.mark.parametrize("tau", TAU_SWEEP)
def test_fig7_vary_tau(benchmark, profile, tau):
    sizes = benchmark.pedantic(
        _measure, args=(profile, 100, tau), rounds=1, iterations=1
    )
    assert sizes["pkwise"] < sizes["adapt"]


@pytest.mark.parametrize("profile", ["REUTERS", "TREC"])
@pytest.mark.parametrize("w", W_SWEEP)
def test_fig7_vary_w(benchmark, profile, w):
    sizes = benchmark.pedantic(
        _measure, args=(profile, w, 5), rounds=1, iterations=1
    )
    assert sizes["pkwise"] < sizes["adapt"]


def test_fig7_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    lines = ["Figure 7: index sizes (postings entries)"]
    header = f"{'setting':<24}{'pkwise':>10}{'adapt':>10}{'faerie':>10}{'fbw':>10}{'adapt/pkw':>11}"
    for profile in ("REUTERS", "TREC"):
        lines.append(f"-- {profile}")
        lines.append(header)
        for w, tau in [(100, t) for t in TAU_SWEEP] + [(w, 5) for w in W_SWEEP]:
            sizes = _collected.get((profile, w, tau))
            if not sizes:
                continue
            ratio = sizes["adapt"] / max(1, sizes["pkwise"])
            lines.append(
                f"w={w:<4} tau={tau:<12}"
                f"{sizes['pkwise']:>10}{sizes['adapt']:>10}"
                f"{sizes['faerie']:>10}{sizes['fbw']:>10}{ratio:>10.1f}x"
            )
    write_report("fig7_index_size", lines)
