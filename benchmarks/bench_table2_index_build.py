"""E5 / Table 2: index construction time (REUTERS).

For pkwise the time decomposes into token-universe partitioning
(offline, cost-model driven) + indexing, as in the paper's
"part + index" column.  Expected shape: Adapt/Faerie indexing times grow
with w and dwarf pkwise's indexing part; FBW is the cheapest; pkwise's
partitioning part grows steeply with tau (the paper reports 2000s at
tau=20 full scale).
"""

from __future__ import annotations

import time

import pytest

from repro import GreedyPartitioner, PKWiseSearcher, SearchParams
from repro.baselines import AdaptSearcher, FaerieSearcher, FBWSearcher

from common import order_for, workload, write_report

SETTINGS = [(25, 2), (50, 2), (100, 2), (100, 5)]

_collected: dict[tuple, dict[str, float]] = {}


def _measure(w: int, tau: int) -> dict[str, float]:
    key = (w, tau)
    if key in _collected:
        return _collected[key]
    data, _queries, _truth = workload("REUTERS")
    order = order_for("REUTERS", w)
    params = SearchParams(w=w, tau=tau, k_max=3)
    flat = params.with_k_max(1)

    start = time.perf_counter()
    partitioner = GreedyPartitioner(
        data, params, order=order, b1_fraction=0.34, b2_fraction=0.17,
        sample_ratio=0.05,
    )
    scheme, _report = partitioner.partition()
    partition_seconds = time.perf_counter() - start

    times = {
        "pkwise_partition": partition_seconds,
        "pkwise_index": PKWiseSearcher(
            data, params, scheme=scheme, order=order
        ).index_build_seconds,
        "adapt": AdaptSearcher(data, flat, order=order).index_build_seconds,
        "faerie": FaerieSearcher(data, flat, order=order).index_build_seconds,
        "fbw": FBWSearcher(data, flat, order=order).index_build_seconds,
    }
    _collected[key] = times
    return times


@pytest.mark.parametrize("w,tau", SETTINGS)
def test_table2_build_times(benchmark, w, tau):
    times = benchmark.pedantic(_measure, args=(w, tau), rounds=1, iterations=1)
    assert times["pkwise_index"] > 0


def test_table2_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    lines = ["Table 2: index construction time (seconds)"]
    lines.append(
        f"{'setting':<18}{'adapt':>9}{'faerie':>9}{'fbw':>9}"
        f"{'pkwise (part + index)':>26}"
    )
    for w, tau in SETTINGS:
        times = _collected.get((w, tau))
        if not times:
            continue
        lines.append(
            f"w={w:<4} tau={tau:<8}"
            f"{times['adapt']:>9.2f}{times['faerie']:>9.2f}{times['fbw']:>9.2f}"
            f"{times['pkwise_partition']:>14.2f} + {times['pkwise_index']:<8.2f}"
        )
    lines.append(
        "notes: pkwise's partitioning part dominates and grows with looser "
        "constraints (the paper's Table 2 trend); the indexing-proper "
        "ordering vs adapt/faerie does not reproduce at Python bench scale "
        "because their builds are bare list appends while pkwise's streams "
        "combinations (see EXPERIMENTS.md)."
    )
    write_report("table2_index_build", lines)
