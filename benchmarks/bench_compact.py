#!/usr/bin/env python
"""Compact index snapshots: cold-open latency, resident memory, probes.

The format-v3 compact snapshot exists for serving economics: a worker
(or a spawn-mode pool child) should come up by *mapping* the index
columns, not by unpickling a Python object graph.  This bench builds
one pkwise searcher, freezes it, saves both snapshot flavours —
format-v2 pickle and format-v3 compact — and measures, in fresh
subprocesses, what a cold open of each costs:

* wall-clock seconds until the searcher is usable,
* resident-set growth attributable to the load (``VmRSS`` delta).

It also times spawn-pool startup end to end (the executor ships the
frozen searcher through a v3 file that every child maps), compares
probe throughput of the dict and compact indexes, and parity-checks
the frozen searcher pair-for-pair against the dict one on the full
query workload.

Emits ``BENCH_compact.json`` at the repo root, with a ``serial``
metrics section in the layout ``benchmarks/check_regression.py`` diffs.

Usage::

    PYTHONPATH=src python benchmarks/bench_compact.py
    PYTHONPATH=src python benchmarks/bench_compact.py --smoke  # CI
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import subprocess
import sys
import tempfile
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent

#: Run in a fresh interpreter per measurement: load one snapshot, report
#: the load time and the VmRSS growth it caused.  argv: path, mmap flag.
_COLD_OPEN_PROBE = """
import json, sys, time

def rss_kb():
    with open("/proc/self/status") as handle:
        for line in handle:
            if line.startswith("VmRSS:"):
                return int(line.split()[1])
    return 0

path, mmap_flag = sys.argv[1], sys.argv[2] == "1"
from repro.persistence import load_searcher  # import cost excluded below

before = rss_kb()
start = time.perf_counter()
searcher = load_searcher(path, mmap=mmap_flag)
elapsed = time.perf_counter() - start
after = rss_kb()
# Touch the index so lazily-mapped pages that a real query would need
# are counted, not hidden.
_ = searcher.params.w
print(json.dumps({
    "load_seconds": elapsed,
    "rss_delta_kb": after - before,
    "rss_after_kb": after,
}))
"""


def build_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument("--profile", default="REUTERS",
                        help="synthetic dataset profile (default REUTERS)")
    parser.add_argument("-w", "--window", type=int, default=50)
    parser.add_argument("--tau", type=int, default=5)
    parser.add_argument("--k-max", type=int, default=4)
    parser.add_argument("--repeats", type=int, default=3,
                        help="cold-open subprocess repeats (min is kept)")
    parser.add_argument("--smoke", action="store_true",
                        help="small workload + relaxed gates for CI")
    parser.add_argument("--out", type=Path, default=ROOT / "BENCH_compact.json",
                        help="output JSON path (default repo root)")
    parser.add_argument("--metrics-out", type=Path, default=None,
                        help="also write the bare metrics snapshot here")
    parser.add_argument("--min-probe-ratio", type=float, default=None,
                        help="required compact/dict batched-probe ratio "
                             "(default 1.0, or 0.7 with --smoke where the "
                             "tiny workload makes the ratio noisy)")
    return parser


def cold_open(path: Path, *, mmap: bool, repeats: int) -> dict:
    """Best-of-N cold open of one snapshot in fresh subprocesses."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
    best: dict | None = None
    for _ in range(repeats):
        proc = subprocess.run(
            [sys.executable, "-c", _COLD_OPEN_PROBE, str(path), "1" if mmap else "0"],
            capture_output=True, text=True, env=env, check=True,
        )
        sample = json.loads(proc.stdout)
        if best is None or sample["load_seconds"] < best["load_seconds"]:
            best = sample
    return best


def probe_throughput(index, keys, *, min_seconds: float = 0.2) -> float:
    """Scalar probes per second over a fixed key sample (>= min_seconds)."""
    rounds = 0
    probed = 0
    start = time.perf_counter()
    while time.perf_counter() - start < min_seconds or rounds == 0:
        for key in keys:
            index.probe(key)
        probed += len(keys)
        rounds += 1
    return probed / (time.perf_counter() - start)


def batched_probe_throughput(index, batches, *, min_seconds: float = 0.2) -> float:
    """Signatures per second through ``probe_many`` (steady state).

    ``batches`` is a list of signature lists shaped like the search
    loop's prefetched event runs.  One warm-up pass runs first so the
    compact index's slot memo is populated — the regime every probe
    after a query's first chunk (and every repeat of a working set)
    runs in, which is what the dict-vs-compact ratio gate compares.
    """
    for batch in batches:
        index.probe_many(batch)
    rounds = 0
    probed = 0
    total = sum(len(batch) for batch in batches)
    start = time.perf_counter()
    while time.perf_counter() - start < min_seconds or rounds == 0:
        for batch in batches:
            index.probe_many(batch)
        probed += total
        rounds += 1
    return probed / (time.perf_counter() - start)


def main(argv: list[str] | None = None) -> int:
    sys.path.insert(0, str(Path(__file__).resolve().parent))
    try:
        import repro  # noqa: F401
    except ImportError:
        sys.path.insert(0, str(ROOT / "src"))
    from common import workload  # noqa: E402  (benchmarks dir import)

    from repro import PKWiseSearcher, SearchParams, save_searcher
    from repro.eval import run_searcher

    args = build_arg_parser().parse_args(argv)
    params = SearchParams(w=args.window, tau=args.tau, k_max=args.k_max)
    data, queries, _truth = workload(args.profile)
    if args.smoke:
        queries = queries[:4]

    build_start = time.perf_counter()
    searcher = PKWiseSearcher(data, params)
    build_seconds = time.perf_counter() - build_start
    freeze_start = time.perf_counter()
    frozen = searcher.compacted()
    freeze_seconds = time.perf_counter() - freeze_start

    # Parity gate: freezing must not change a single pair.
    dict_run = run_searcher(searcher, queries, name="dict")
    compact_run = run_searcher(frozen, queries, name="compact")
    if compact_run.results_by_query != dict_run.results_by_query:
        print("PARITY FAILURE: compact pairs diverge from dict pairs",
              file=sys.stderr)
        return 1

    with tempfile.TemporaryDirectory(prefix="repro-bench-compact-") as tmp:
        v2_path = Path(tmp) / "index-v2.pkl"
        v3_path = Path(tmp) / "index-v3.idx"
        save_searcher(searcher, v2_path)
        save_searcher(searcher, v3_path, compact=True)
        v2_bytes = v2_path.stat().st_size
        v3_bytes = v3_path.stat().st_size

        v2_open = cold_open(v2_path, mmap=False, repeats=args.repeats)
        v3_open = cold_open(v3_path, mmap=False, repeats=args.repeats)
        v3_mmap_open = cold_open(v3_path, mmap=True, repeats=args.repeats)

    # Spawn-pool startup: the executor persists the frozen searcher to a
    # v3 file and every child maps it in its initializer; time the whole
    # two-worker round trip on a minimal workload.
    spawn_start = time.perf_counter()
    spawn_run = run_searcher(
        frozen, queries[:2], jobs=2, start_method="spawn", name="spawn"
    )
    spawn_seconds = time.perf_counter() - spawn_start
    spawn_parity = (
        spawn_run.results_by_query
        == {k: dict_run.results_by_query[k] for k in spawn_run.results_by_query}
    )

    keys = list(searcher.index._postings)[:2000]
    dict_rate = probe_throughput(searcher.index, keys)
    compact_rate = probe_throughput(frozen.index, keys)

    # Batched probing at the width the search loop actually issues:
    # mean signatures per probe_many call, straight from the run's own
    # probe_signatures / probe_batches counters.
    run_stats = compact_run.stats
    batch_width = max(1, round(
        run_stats.probe_signatures / max(1, run_stats.probe_batches)
    ))
    batches = [
        keys[i:i + batch_width]
        for i in range(0, max(1, len(keys) - batch_width + 1), batch_width)
    ]
    dict_batched = batched_probe_throughput(searcher.index, batches)
    compact_batched = batched_probe_throughput(frozen.index, batches)
    probe_ratio = compact_batched / dict_batched if dict_batched > 0 else 0.0

    cold_open_speedup = (
        v2_open["load_seconds"] / v3_mmap_open["load_seconds"]
        if v3_mmap_open["load_seconds"] > 0 else float("inf")
    )
    rss_saving_kb = v2_open["rss_delta_kb"] - v3_mmap_open["rss_delta_kb"]

    print(f"workload: {len(data)} docs, {len(queries)} queries, "
          f"w={params.w} tau={params.tau}")
    print(f"build {build_seconds * 1e3:.1f}ms, freeze {freeze_seconds * 1e3:.1f}ms, "
          f"index {frozen.index.num_postings} postings "
          f"({frozen.index.nbytes() / 1024:.0f} KiB of columns)")
    print(f"{'snapshot':>12} {'bytes':>12} {'cold open':>12} {'RSS delta':>12}")
    for label, size, sample in (
        ("v2 pickle", v2_bytes, v2_open),
        ("v3 copy", v3_bytes, v3_open),
        ("v3 mmap", v3_bytes, v3_mmap_open),
    ):
        print(f"{label:>12} {size:>12} "
              f"{sample['load_seconds'] * 1e3:>10.2f}ms "
              f"{sample['rss_delta_kb']:>10d}kB")
    print(f"cold-open speedup (v2 pickle -> v3 mmap): {cold_open_speedup:.1f}x, "
          f"RSS saving {rss_saving_kb}kB")
    print(f"spawn 2-worker round trip: {spawn_seconds * 1e3:.1f}ms "
          f"(parity {'ok' if spawn_parity else 'FAILED'})")
    print(f"scalar probe throughput: dict {dict_rate:,.0f}/s, "
          f"compact {compact_rate:,.0f}/s")
    print(f"batched probe throughput (width {batch_width}): "
          f"dict {dict_batched:,.0f}/s, compact {compact_batched:,.0f}/s "
          f"(ratio {probe_ratio:.2f})")

    record = {
        "bench": "compact",
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "host": {
            "cpus": os.cpu_count(),
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "config": {
            "profile": args.profile,
            "num_documents": len(data),
            "num_queries": len(queries),
            "w": params.w,
            "tau": params.tau,
            "k_max": params.k_max,
            "smoke": args.smoke,
        },
        "index": {
            "build_seconds": build_seconds,
            "freeze_seconds": freeze_seconds,
            "num_postings": frozen.index.num_postings,
            "num_signatures": frozen.index.num_signatures,
            "column_bytes": frozen.index.nbytes(),
            "rank_doc_bytes": frozen.rank_docs.nbytes(),
        },
        "snapshots": {
            "v2_bytes": v2_bytes,
            "v3_bytes": v3_bytes,
            "v2_open": v2_open,
            "v3_open": v3_open,
            "v3_mmap_open": v3_mmap_open,
            "cold_open_speedup": cold_open_speedup,
            "rss_saving_kb": rss_saving_kb,
        },
        "spawn": {
            "workers": 2,
            "round_trip_seconds": spawn_seconds,
            "parity": spawn_parity,
        },
        "probe": {
            "sampled_keys": len(keys),
            "dict_probes_per_second": dict_rate,
            "compact_probes_per_second": compact_rate,
            "batch_width": batch_width,
            "dict_batched_probes_per_second": dict_batched,
            "compact_batched_probes_per_second": compact_batched,
            "compact_to_dict_probe_ratio": probe_ratio,
        },
        # The layout check_regression.py diffs: counters exact, timers
        # within tolerance.  Compact counters == dict counters is itself
        # part of the parity contract.
        "serial": {"metrics": compact_run.metrics_snapshot()},
    }
    args.out.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    print(f"wrote {args.out}")
    if args.metrics_out:
        args.metrics_out.write_text(
            json.dumps(
                {
                    "config": record["config"],
                    "probe": record["probe"],
                    "serial": {"metrics": compact_run.metrics_snapshot()},
                },
                indent=2,
                sort_keys=True,
            )
            + "\n"
        )
        print(f"wrote {args.metrics_out}")

    failures = []
    if not spawn_parity:
        failures.append("spawn-run pairs diverged from the serial run")
    # The acceptance bars.  Smoke keeps the RSS gate (page-mapped columns
    # beat unpickled object graphs at any scale) but relaxes the latency
    # multiplier: on a tiny index both opens are dominated by fixed
    # pickling costs and the ratio is noise.
    if rss_saving_kb <= 0:
        failures.append(
            f"v3 mmap RSS delta {v3_mmap_open['rss_delta_kb']}kB not below "
            f"v2 pickle {v2_open['rss_delta_kb']}kB"
        )
    floor = 1.0 if args.smoke else 2.0
    if cold_open_speedup < floor:
        failures.append(
            f"cold-open speedup {cold_open_speedup:.2f}x < required {floor}x"
        )
    # Batched probing is the hot path the compact index must not lose
    # on; on the full profile the compact gather has to at least match
    # the dict index at the search loop's own batch width.
    ratio_floor = args.min_probe_ratio
    if ratio_floor is None:
        ratio_floor = 0.7 if args.smoke else 1.0
    if probe_ratio < ratio_floor:
        failures.append(
            f"compact/dict batched probe ratio {probe_ratio:.2f} < "
            f"required {ratio_floor}"
        )
    for failure in failures:
        print(f"REGRESSION: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
