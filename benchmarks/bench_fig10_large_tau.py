"""E8 / Figure 10: large thresholds and sub-partitioning (PAN profile).

Sweeps the number of sub-partitions m for large tau at a large window.
Expected shape: query time first drops with m (fewer combinations) and
then rebounds (longer prefixes, worse selectivity); the best m grows
with tau — the basis of the paper's m = 0.25 * tau rule.

The paper uses w=500, tau up to 100 on full PAN; the bench uses w=200
and tau up to 40 on the reduced PAN profile to stay in pure-Python
budgets (set REPRO_BENCH_SCALE to raise).
"""

from __future__ import annotations

import pytest

from repro import GlobalOrder, PKWiseSearcher, SearchParams
from repro.eval import run_searcher

from common import pan_workload, write_report

W = 200
TAU_SWEEP = [10, 25, 40]
M_SWEEP = [1, 5, 10, 15, 25]

_collected: dict[tuple, float] = {}
_orders: dict[int, GlobalOrder] = {}


def _measure(tau: int, m: int) -> float:
    key = (tau, m)
    if key in _collected:
        return _collected[key]
    data, queries, _truth = pan_workload()
    order = _orders.get(W)
    if order is None:
        order = GlobalOrder(data, W)
        _orders[W] = order
    params = SearchParams(w=W, tau=tau, k_max=4, m=m)
    searcher = PKWiseSearcher(data, params, order=order)
    run = run_searcher(searcher, queries)
    _collected[key] = run.avg_query_seconds
    return run.avg_query_seconds


@pytest.mark.parametrize("tau", TAU_SWEEP)
@pytest.mark.parametrize("m", M_SWEEP)
def test_fig10_m_sweep(benchmark, tau, m):
    benchmark.pedantic(_measure, args=(tau, m), rounds=1, iterations=1)


def test_fig10_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    lines = [f"Figure 10: large thresholds, w={W} (avg query ms, PAN profile)"]
    lines.append(f"{'tau':<8}" + "".join(f"m={m:<10}" for m in M_SWEEP) + "best m")
    for tau in TAU_SWEEP:
        cells = []
        best_m, best = None, float("inf")
        for m in M_SWEEP:
            value = _collected.get((tau, m))
            if value is None:
                cells.append(f"{'n/a':<12}")
                continue
            cells.append(f"{value * 1e3:<12.1f}")
            if value < best:
                best_m, best = m, value
        lines.append(f"{tau:<8}" + "".join(cells) + str(best_m))
    lines.append(
        "shape: larger tau favours larger m (combination count vs "
        "selectivity trade, Section 6)."
    )
    write_report("fig10_large_tau", lines)
