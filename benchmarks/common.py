"""Shared workload builders and reporting helpers for the benchmarks.

Every benchmark runs on synthetic stand-ins for the paper's corpora (see
DESIGN.md, substitutions).  Scales are laptop-sized by default and can
be raised with the ``REPRO_BENCH_SCALE`` environment variable (a float
multiplier applied to every workload; 1.0 = defaults, 4.0 = 4x more
documents, closer to paper-shape runtimes).

Workloads are cached per (profile, scale, seed, reuse) within the pytest
process, so bench modules can share them without rebuilding.

Each bench prints paper-style tables (visible with ``pytest -s``) and
appends them to ``benchmarks/results/<experiment>.txt`` so the rows
survive pytest's output capture.
"""

from __future__ import annotations

import os
from dataclasses import replace
from functools import lru_cache
from pathlib import Path

from repro import GlobalOrder
from repro.corpus.plagiarism import ObfuscationLevel
from repro.corpus.synthetic import (
    DATASET_PROFILES,
    ReuseSpec,
    SyntheticCorpusGenerator,
    make_profile_collection,
)

RESULTS_DIR = Path(__file__).parent / "results"

#: Global scale multiplier (documents / queries / vocabulary).
BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))

#: Base scales per profile, tuned so the whole suite runs in minutes.
BASE_SCALES = {
    "REUTERS": 0.008,   # ~62 docs, ~15k tokens
    "TREC": 0.0012,     # ~223 docs, ~44k tokens
    "PAN": 0.002,       # ~21 docs (length overridden below)
}

#: The PAN profile's 27k-token documents are reduced for pure-Python
#: runtimes; window behaviour only needs documents >> w.
PAN_DOC_LENGTH = 2_500.0
PAN_QUERY_LENGTH = 700.0

DEFAULT_NUM_QUERIES = 8


@lru_cache(maxsize=None)
def workload(
    profile_name: str,
    seed: int = 7,
    segment_length: int = 150,
    levels: tuple[ObfuscationLevel, ...] = (
        ObfuscationLevel.NONE,
        ObfuscationLevel.LOW,
        ObfuscationLevel.HIGH,
        ObfuscationLevel.SIMULATED,
    ),
    num_queries: int = DEFAULT_NUM_QUERIES,
):
    """(data, queries, ground_truth) for a profile at bench scale."""
    scale = BASE_SCALES[profile_name] * BENCH_SCALE
    data, queries, truth = make_profile_collection(
        profile_name,
        scale=scale,
        seed=seed,
        reuse=ReuseSpec(segment_length=segment_length, levels=levels),
        num_queries=num_queries,
    )
    return data, queries, truth


@lru_cache(maxsize=None)
def pan_workload(seed: int = 7, num_queries: int = 4, segment_length: int = 600):
    """PAN-style workload with reduced document lengths (see DESIGN.md)."""
    profile = replace(
        DATASET_PROFILES["PAN"].scaled(BASE_SCALES["PAN"] * BENCH_SCALE),
        avg_doc_length=PAN_DOC_LENGTH,
        avg_query_length=PAN_QUERY_LENGTH,
    )
    generator = SyntheticCorpusGenerator(profile, seed=seed)
    data = generator.generate_data()
    raw_queries = generator.generate_queries(num_queries)
    from repro.corpus import Document
    from repro.corpus.plagiarism import PlagiarismInjector

    injector = PlagiarismInjector(seed=seed + 1, vocabulary_size=len(data.vocabulary))
    queries = []
    truth = []
    for query_id, tokens in enumerate(raw_queries):
        tokens, pair = injector.splice_case(
            data, query_id, tokens, segment_length=segment_length,
            level=ObfuscationLevel.LOW,
        )
        if pair is not None:
            truth.append(pair)
        queries.append(Document(query_id, tokens, name=f"PAN-q{query_id}"))
    return data, queries, truth


@lru_cache(maxsize=None)
def order_for(profile_name: str, w: int, seed: int = 7) -> GlobalOrder:
    """Shared global order per (profile, w)."""
    data, _queries, _truth = workload(profile_name, seed=seed)
    return GlobalOrder(data, w)


def write_report(experiment: str, lines: list[str]) -> None:
    """Print a report and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    text = "\n".join(lines)
    print()
    print(text)
    path = RESULTS_DIR / f"{experiment}.txt"
    path.write_text(text + "\n")


def speedup(baseline_seconds: float, ours_seconds: float) -> str:
    if ours_seconds <= 0:
        return "inf"
    return f"{baseline_seconds / ours_seconds:.1f}x"
