#!/usr/bin/env python
"""Serving latency: the result cache on a repeated-query workload.

Serving workloads are dominated by repeats — a plagiarism screen
re-checks the same suspicious passages against a slowly-changing corpus
— and the exact searcher is deterministic, so a repeated query's answer
can come from the :class:`~repro.service.ResultCache` instead of the
slide loop.  This bench measures exactly that effect: the fig8 query
workload is served ``--repeats`` times through a
:class:`~repro.SearchService` twice, once with the cache disabled
(``cache_size=0``) and once enabled, and per-request latencies are
compared (p50/p95).  Every cached response is parity-checked
pair-for-pair against its uncached counterpart — the cache must never
change an answer, only its latency.

Emits ``BENCH_serving.json`` at the repo root: the latency table, the
cache hit/miss counters, and a ``serial`` metrics section in the layout
``benchmarks/check_regression.py`` diffs (counters exact, timers within
tolerance).

Usage::

    PYTHONPATH=src python benchmarks/bench_serving.py
    PYTHONPATH=src python benchmarks/bench_serving.py --tiny  # CI smoke
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import statistics
import sys
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent


def _ensure_importable() -> None:
    sys.path.insert(0, str(Path(__file__).resolve().parent))
    try:
        import repro  # noqa: F401
    except ImportError:
        sys.path.insert(0, str(ROOT / "src"))


def build_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument("--profile", default="REUTERS",
                        help="synthetic dataset profile (default REUTERS)")
    parser.add_argument("-w", "--window", type=int, default=50)
    parser.add_argument("--tau", type=int, default=5)
    parser.add_argument("--k-max", type=int, default=4)
    parser.add_argument("--repeats", type=int, default=5,
                        help="times each query is served (default 5)")
    parser.add_argument("--tiny", action="store_true",
                        help="4 queries x 3 repeats for CI smoke")
    parser.add_argument("--out", type=Path, default=ROOT / "BENCH_serving.json",
                        help="output JSON path (default repo root)")
    parser.add_argument("--metrics-out", type=Path, default=None,
                        help="also write the bare metrics snapshot here")
    return parser


def percentile(samples: list[float], fraction: float) -> float:
    """Nearest-rank percentile of ``samples`` (0 < fraction <= 1)."""
    ordered = sorted(samples)
    rank = max(0, min(len(ordered) - 1, round(fraction * (len(ordered) - 1))))
    return ordered[rank]


def serve_workload(service, requests):
    """Serve ``requests`` serially; returns (latencies, responses)."""
    latencies: list[float] = []
    responses = []
    for query in requests:
        start = time.perf_counter()
        response = service.search(query)
        latencies.append(time.perf_counter() - start)
        responses.append(response)
    return latencies, responses


def main(argv: list[str] | None = None) -> int:
    _ensure_importable()
    from common import workload  # noqa: E402  (benchmarks dir import)

    from repro import PKWiseSearcher, SearchParams, SearchService

    args = build_arg_parser().parse_args(argv)
    params = SearchParams(w=args.window, tau=args.tau, k_max=args.k_max)
    data, queries, _truth = workload(args.profile)
    if args.tiny:
        queries = queries[:4]
        args.repeats = min(args.repeats, 3)
    searcher = PKWiseSearcher(data, params)

    # Repeated-query serving sequence: full passes over the workload, so
    # pass 1 is all-fresh and every later pass is all-repeat.
    requests = [query for _pass in range(args.repeats) for query in queries]

    uncached_service = SearchService(
        searcher, data, max_workers=1, cache_size=0, name="serving-uncached"
    )
    uncached_latencies, uncached_responses = serve_workload(
        uncached_service, requests
    )
    uncached_service.close()

    cached_service = SearchService(
        searcher, data, max_workers=1, cache_size=256, name="serving-cached"
    )
    cached_latencies, cached_responses = serve_workload(cached_service, requests)

    # Parity: the cache must never change an answer.
    mismatches = sum(
        1
        for uncached, cached in zip(uncached_responses, cached_responses)
        if uncached.pairs != cached.pairs
    )
    if mismatches:
        print(f"PARITY FAILURE: {mismatches} responses diverged", file=sys.stderr)
        return 1

    hits = cached_service.cache.hits
    misses = cached_service.cache.misses
    uncached_p50 = percentile(uncached_latencies, 0.50)
    uncached_p95 = percentile(uncached_latencies, 0.95)
    cached_p50 = percentile(cached_latencies, 0.50)
    cached_p95 = percentile(cached_latencies, 0.95)
    p50_speedup = uncached_p50 / cached_p50 if cached_p50 > 0 else float("inf")

    print(f"serving workload: {len(queries)} queries x {args.repeats} passes "
          f"= {len(requests)} requests")
    print(f"{'':>10} {'p50':>12} {'p95':>12} {'mean':>12}")
    for label, lat in (("uncached", uncached_latencies),
                       ("cached", cached_latencies)):
        print(f"{label:>10} {percentile(lat, 0.5) * 1e3:>10.3f}ms "
              f"{percentile(lat, 0.95) * 1e3:>10.3f}ms "
              f"{statistics.mean(lat) * 1e3:>10.3f}ms")
    print(f"p50 speedup: {p50_speedup:.1f}x   cache: {hits} hits / "
          f"{misses} misses")

    snapshot = cached_service.metrics_snapshot()
    cached_service.close()
    record = {
        "bench": "serving",
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "host": {
            "cpus": os.cpu_count(),
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "config": {
            "profile": args.profile,
            "num_documents": len(data),
            "num_queries": len(queries),
            "w": params.w,
            "tau": params.tau,
            "k_max": params.k_max,
            "repeats": args.repeats,
            "tiny": args.tiny,
        },
        "latency": {
            "num_requests": len(requests),
            "uncached_p50_seconds": uncached_p50,
            "uncached_p95_seconds": uncached_p95,
            "cached_p50_seconds": cached_p50,
            "cached_p95_seconds": cached_p95,
            "p50_speedup": p50_speedup,
        },
        "cache": {
            "hits": hits,
            "misses": misses,
            "hit_rate": hits / max(1, hits + misses),
        },
        # The layout check_regression.py diffs: counters exact, timers
        # within tolerance.
        "serial": {"metrics": snapshot},
    }
    args.out.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    print(f"wrote {args.out}")
    if args.metrics_out:
        args.metrics_out.write_text(
            json.dumps(
                {"config": record["config"], "serial": {"metrics": snapshot}},
                indent=2,
                sort_keys=True,
            )
            + "\n"
        )
        print(f"wrote {args.metrics_out}")

    # The acceptance bar: repeats make the cached p50 a cache hit, which
    # must beat a fresh search by a wide margin.
    if args.repeats > 1 and p50_speedup < 5.0:
        print(f"REGRESSION: cached p50 speedup {p50_speedup:.1f}x < 5x",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
