#!/usr/bin/env python
"""Serving latency: the result cache on a repeated-query workload.

Serving workloads are dominated by repeats — a plagiarism screen
re-checks the same suspicious passages against a slowly-changing corpus
— and the exact searcher is deterministic, so a repeated query's answer
can come from the :class:`~repro.service.ResultCache` instead of the
slide loop.  This bench measures exactly that effect: the fig8 query
workload is served ``--repeats`` times through a
:class:`~repro.SearchService` twice, once with the cache disabled
(``cache_size=0``) and once enabled, and per-request latencies are
compared (p50/p95).  Every cached response is parity-checked
pair-for-pair against its uncached counterpart — the cache must never
change an answer, only its latency.

A second profile measures **sharded aggregate throughput**: the same
index is served uncached over HTTP by one ``repro serve`` process and
then by ``repro serve --shards N`` (N worker processes behind the
scatter router), with N concurrent client threads driving each.  The
``>= 2x at 3 shards`` gate is only enforced when the host has enough
cores for the workers to actually run in parallel (``cores > N``); on
smaller hosts the measured numbers are still recorded, with the gate
marked unenforced — a 1-core box physically cannot show the speedup
and pretending otherwise would just train the suite to lie.

A third profile measures **ingest while serving**: a writer thread
streams documents through ``service.add_text`` (upgrading the
deployment to the LSM write path in place) with periodic flushes and a
final compaction, while concurrent reader threads drive uncached
queries the whole time.  The gates are behavioral, not timed: zero
``ServiceOverloadError`` (installs happen inside the write-lock
critical section — serving never blocks on a fold) and per-thread
monotone response epochs (no mixed-generation response).  Sustained
writes/s and concurrent-query latency are recorded.

Emits ``BENCH_serving.json`` at the repo root: the latency table, the
cache hit/miss counters, the sharded throughput profile, the
ingest-while-serving profile, and a ``serial`` metrics section in the
layout ``benchmarks/check_regression.py`` diffs (counters exact,
timers within tolerance).

Usage::

    PYTHONPATH=src python benchmarks/bench_serving.py
    PYTHONPATH=src python benchmarks/bench_serving.py --tiny  # CI smoke
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import statistics
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent


def _ensure_importable() -> None:
    sys.path.insert(0, str(Path(__file__).resolve().parent))
    try:
        import repro  # noqa: F401
    except ImportError:
        sys.path.insert(0, str(ROOT / "src"))


def build_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument("--profile", default="REUTERS",
                        help="synthetic dataset profile (default REUTERS)")
    parser.add_argument("-w", "--window", type=int, default=50)
    parser.add_argument("--tau", type=int, default=5)
    parser.add_argument("--k-max", type=int, default=4)
    parser.add_argument("--repeats", type=int, default=5,
                        help="times each query is served (default 5)")
    parser.add_argument("--tiny", action="store_true",
                        help="4 queries x 3 repeats for CI smoke")
    parser.add_argument("--out", type=Path, default=ROOT / "BENCH_serving.json",
                        help="output JSON path (default repo root)")
    parser.add_argument("--metrics-out", type=Path, default=None,
                        help="also write the bare metrics snapshot here")
    parser.add_argument("--shards", type=int, default=3,
                        help="shard count for the throughput profile "
                             "(default 3; 0 skips the sharded phase)")
    parser.add_argument("--qps-requests", type=int, default=None,
                        help="HTTP requests per throughput arm (default: "
                             "6x the query count, 2x under --tiny)")
    return parser


def percentile(samples: list[float], fraction: float) -> float:
    """Nearest-rank percentile of ``samples`` (0 < fraction <= 1)."""
    ordered = sorted(samples)
    rank = max(0, min(len(ordered) - 1, round(fraction * (len(ordered) - 1))))
    return ordered[rank]


def serve_workload(service, requests):
    """Serve ``requests`` serially; returns (latencies, responses)."""
    latencies: list[float] = []
    responses = []
    for query in requests:
        start = time.perf_counter()
        response = service.search(query)
        latencies.append(time.perf_counter() - start)
        responses.append(response)
    return latencies, responses


def _available_cores() -> int | None:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count()


def _measure_http_qps(index_path: Path, token_queries: list[list[int]],
                      num_requests: int, client_threads: int,
                      extra_cli: list[str]) -> float:
    """Serve ``index_path`` uncached in a subprocess; drive it with
    ``client_threads`` concurrent HTTP clients and return requests/s."""
    from repro.service.client import remote_search

    cmd = [sys.executable, "-m", "repro.cli", "serve",
           "--index", str(index_path), "--port", "0",
           "--cache-size", "0", *extra_cli]
    server = subprocess.Popen(cmd, stdout=subprocess.PIPE, text=True)
    try:
        deadline = time.monotonic() + 120
        url = None
        while time.monotonic() < deadline:
            line = server.stdout.readline()
            if line.startswith("SERVING "):
                url = line.split(maxsplit=1)[1].strip()
                break
            if not line.startswith("SHARD ") and server.poll() is not None:
                raise RuntimeError(f"server died: {' '.join(cmd)}")
        if url is None:
            raise RuntimeError(f"no SERVING line from {' '.join(cmd)}")

        remote_search(url, token_ids=token_queries[0])  # warm up

        next_request = [0]
        lock = threading.Lock()
        errors: list[Exception] = []

        def client() -> None:
            while not errors:
                with lock:
                    i = next_request[0]
                    if i >= num_requests:
                        return
                    next_request[0] += 1
                try:
                    remote_search(
                        url, token_ids=token_queries[i % len(token_queries)]
                    )
                except Exception as exc:  # noqa: BLE001 - report and stop
                    errors.append(exc)

        threads = [threading.Thread(target=client)
                   for _ in range(client_threads)]
        start = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        wall = time.perf_counter() - start
        if errors:
            raise errors[0]
        return num_requests / wall
    finally:
        server.terminate()
        server.wait(timeout=30)


def bench_sharded_throughput(args, data, params, queries) -> tuple[dict, bool]:
    """Single-process vs ``--shards N`` aggregate uncached QPS.

    Returns the record section and whether the gate (when enforced)
    passed.
    """
    from repro import PKWiseSearcher
    from repro.persistence import save_searcher

    num_requests = args.qps_requests or len(queries) * (2 if args.tiny else 6)
    token_queries = [list(query.tokens) for query in queries]

    with tempfile.TemporaryDirectory(prefix="repro-bench-serving-") as tmp:
        index_path = Path(tmp) / "corpus.idx"
        searcher = PKWiseSearcher(data, params)
        save_searcher(searcher, index_path, data=data, compact=True)
        searcher.close()
        single_qps = _measure_http_qps(
            index_path, token_queries, num_requests, args.shards, []
        )
        sharded_qps = _measure_http_qps(
            index_path, token_queries, num_requests, args.shards,
            ["--shards", str(args.shards)],
        )

    speedup = sharded_qps / single_qps if single_qps > 0 else float("inf")
    cores = _available_cores()
    # The router + N workers need > N cores before parallel speedup is
    # physically possible; below that the gate records, not enforces.
    enforced = cores is not None and cores > args.shards
    required = 2.0
    passed = (not enforced) or speedup >= required
    print(f"sharded throughput ({num_requests} uncached requests, "
          f"{args.shards} client threads): single {single_qps:.1f} qps, "
          f"{args.shards} shards {sharded_qps:.1f} qps "
          f"({speedup:.2f}x, gate {'enforced' if enforced else 'recorded only'}"
          f" on {cores} core(s))")
    section = {
        "shards": args.shards,
        "num_requests": num_requests,
        "client_threads": args.shards,
        "single_process_qps": single_qps,
        "sharded_qps": sharded_qps,
        "speedup": speedup,
        "gate": {
            "required_speedup": required,
            "enforced": enforced,
            "cores": cores,
            "passed": passed,
        },
    }
    return section, passed


def bench_ingest_while_serving(args, data, params, queries) -> tuple[dict, bool]:
    """Stream writes through a live service under concurrent queries.

    Returns ``(profile_section, ok)`` — ``ok`` is False when a query
    was rejected with ``ServiceOverloadError`` or any reader observed
    a non-monotone response epoch.
    """
    import random

    from repro import (
        DocumentCollection,
        PKWiseSearcher,
        SearchService,
        ServiceOverloadError,
    )

    writes = 12 if args.tiny else 60
    flush_every = 5 if args.tiny else 25
    readers = 2
    rng = random.Random(20160626)

    # A private copy of the corpus: the writer grows it live.
    live_data = DocumentCollection()
    doc_texts = [data.vocabulary.decode(doc.tokens) for doc in data]
    for doc_id, tokens in enumerate(doc_texts):
        live_data.add_tokens(tokens, name=f"doc-{doc_id}")
    service = SearchService(
        PKWiseSearcher(live_data, params), live_data,
        max_workers=2, max_queue=256, cache_size=0, name="serving-ingest",
    )
    token_queries = [
        live_data.encode_query_tokens(data.vocabulary.decode(query.tokens))
        for query in queries
    ]

    overloads: list[Exception] = []
    errors: list[Exception] = []
    latencies_lock = threading.Lock()
    query_latencies: list[float] = []
    epoch_ok = True
    stop = threading.Event()

    def reader(seed: int) -> None:
        nonlocal epoch_ok
        reader_rng = random.Random(seed)
        last_epoch = -1
        while not stop.is_set():
            query = token_queries[reader_rng.randrange(len(token_queries))]
            start = time.perf_counter()
            try:
                response = service.search(query)
            except ServiceOverloadError as exc:
                overloads.append(exc)
                continue
            except Exception as exc:  # noqa: BLE001 - recorded and gated
                errors.append(exc)
                continue
            elapsed = time.perf_counter() - start
            with latencies_lock:
                query_latencies.append(elapsed)
                if response.index_epoch < last_epoch:
                    epoch_ok = False
                last_epoch = max(last_epoch, response.index_epoch)

    threads = [
        threading.Thread(target=reader, args=(1000 + i,))
        for i in range(readers)
    ]
    for thread in threads:
        thread.start()
    folds = 0
    write_start = time.perf_counter()
    try:
        for i in range(writes):
            source = doc_texts[rng.randrange(len(doc_texts))]
            offset = rng.randrange(max(1, len(source) - 120))
            service.add_text(
                " ".join(source[offset:offset + 120]), name=f"live-{i}"
            )
            if (i + 1) % flush_every == 0:
                service.searcher.store.flush()
                folds += 1
        service.searcher.store.compact()
        folds += 1
    finally:
        write_seconds = time.perf_counter() - write_start
        stop.set()
        for thread in threads:
            thread.join()
    store = service.searcher.store
    final_segments = store.num_segments
    service.close()

    ok = not overloads and not errors and epoch_ok
    writes_per_second = writes / write_seconds if write_seconds else 0.0
    qps = len(query_latencies) / write_seconds if write_seconds else 0.0
    section = {
        "writes": writes,
        "folds": folds,
        "writes_per_second": writes_per_second,
        "concurrent_queries": len(query_latencies),
        "concurrent_qps": qps,
        "query_p50_seconds": percentile(query_latencies, 0.50)
        if query_latencies else None,
        "query_p95_seconds": percentile(query_latencies, 0.95)
        if query_latencies else None,
        "overloads": len(overloads),
        "errors": len(errors),
        "epoch_monotonic": epoch_ok,
        "final_segments": final_segments,
    }
    print(
        f"ingest-while-serving: {writes} writes at "
        f"{writes_per_second:.1f}/s across {folds} folds, "
        f"{len(query_latencies)} concurrent queries "
        f"({qps:.1f}/s), overloads={len(overloads)}, "
        f"epoch_monotonic={epoch_ok}"
    )
    return section, ok


def main(argv: list[str] | None = None) -> int:
    _ensure_importable()
    from common import workload  # noqa: E402  (benchmarks dir import)

    from repro import PKWiseSearcher, SearchParams, SearchService

    args = build_arg_parser().parse_args(argv)
    params = SearchParams(w=args.window, tau=args.tau, k_max=args.k_max)
    data, queries, _truth = workload(args.profile)
    if args.tiny:
        queries = queries[:4]
        args.repeats = min(args.repeats, 3)
    searcher = PKWiseSearcher(data, params)

    # Repeated-query serving sequence: full passes over the workload, so
    # pass 1 is all-fresh and every later pass is all-repeat.
    requests = [query for _pass in range(args.repeats) for query in queries]

    uncached_service = SearchService(
        searcher, data, max_workers=1, cache_size=0, name="serving-uncached"
    )
    uncached_latencies, uncached_responses = serve_workload(
        uncached_service, requests
    )
    uncached_service.close()

    cached_service = SearchService(
        searcher, data, max_workers=1, cache_size=256, name="serving-cached"
    )
    cached_latencies, cached_responses = serve_workload(cached_service, requests)

    # Parity: the cache must never change an answer.
    mismatches = sum(
        1
        for uncached, cached in zip(uncached_responses, cached_responses)
        if uncached.pairs != cached.pairs
    )
    if mismatches:
        print(f"PARITY FAILURE: {mismatches} responses diverged", file=sys.stderr)
        return 1

    hits = cached_service.cache.hits
    misses = cached_service.cache.misses
    uncached_p50 = percentile(uncached_latencies, 0.50)
    uncached_p95 = percentile(uncached_latencies, 0.95)
    cached_p50 = percentile(cached_latencies, 0.50)
    cached_p95 = percentile(cached_latencies, 0.95)
    p50_speedup = uncached_p50 / cached_p50 if cached_p50 > 0 else float("inf")

    print(f"serving workload: {len(queries)} queries x {args.repeats} passes "
          f"= {len(requests)} requests")
    print(f"{'':>10} {'p50':>12} {'p95':>12} {'mean':>12}")
    for label, lat in (("uncached", uncached_latencies),
                       ("cached", cached_latencies)):
        print(f"{label:>10} {percentile(lat, 0.5) * 1e3:>10.3f}ms "
              f"{percentile(lat, 0.95) * 1e3:>10.3f}ms "
              f"{statistics.mean(lat) * 1e3:>10.3f}ms")
    print(f"p50 speedup: {p50_speedup:.1f}x   cache: {hits} hits / "
          f"{misses} misses")

    snapshot = cached_service.metrics_snapshot()
    cached_service.close()

    ingest_section, ingest_ok = bench_ingest_while_serving(
        args, data, params, queries
    )

    sharded_section = None
    sharded_ok = True
    if args.shards > 1:
        sharded_section, sharded_ok = bench_sharded_throughput(
            args, data, params, queries
        )

    record = {
        "bench": "serving",
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "host": {
            "cpus": os.cpu_count(),
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "config": {
            "profile": args.profile,
            "num_documents": len(data),
            "num_queries": len(queries),
            "w": params.w,
            "tau": params.tau,
            "k_max": params.k_max,
            "repeats": args.repeats,
            "tiny": args.tiny,
        },
        "latency": {
            "num_requests": len(requests),
            "uncached_p50_seconds": uncached_p50,
            "uncached_p95_seconds": uncached_p95,
            "cached_p50_seconds": cached_p50,
            "cached_p95_seconds": cached_p95,
            "p50_speedup": p50_speedup,
        },
        "cache": {
            "hits": hits,
            "misses": misses,
            "hit_rate": hits / max(1, hits + misses),
        },
        "ingest": ingest_section,
        # The layout check_regression.py diffs: counters exact, timers
        # within tolerance.
        "serial": {"metrics": snapshot},
    }
    if sharded_section is not None:
        record["sharded"] = sharded_section
    args.out.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    print(f"wrote {args.out}")
    if args.metrics_out:
        args.metrics_out.write_text(
            json.dumps(
                {"config": record["config"], "serial": {"metrics": snapshot}},
                indent=2,
                sort_keys=True,
            )
            + "\n"
        )
        print(f"wrote {args.metrics_out}")

    # The acceptance bar: repeats make the cached p50 a cache hit, which
    # must beat a fresh search by a wide margin.
    if args.repeats > 1 and p50_speedup < 5.0:
        print(f"REGRESSION: cached p50 speedup {p50_speedup:.1f}x < 5x",
              file=sys.stderr)
        return 1
    if not ingest_ok:
        print(
            f"REGRESSION: ingest-while-serving saw "
            f"{ingest_section['overloads']} overloads, "
            f"{ingest_section['errors']} errors, "
            f"epoch_monotonic={ingest_section['epoch_monotonic']} — "
            f"serving must never block on (or reorder across) a fold",
            file=sys.stderr,
        )
        return 1
    if not sharded_ok:
        print(f"REGRESSION: sharded speedup "
              f"{sharded_section['speedup']:.2f}x < "
              f"{sharded_section['gate']['required_speedup']}x at "
              f"{sharded_section['shards']} shards", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
