#!/usr/bin/env python
"""CI smoke for streaming ingestion: stream, SIGKILL mid-compaction, resume.

Exercises the crash-safety contract of the LSM write path end to end,
exactly as an operator would hit it:

1. generates a small deterministic corpus (fixed seed) as ``.txt``
   files in a temp dir, split into two arrival batches,
2. streams batch 1 through ``repro ingest --compact`` with a
   ``REPRO_FAULTS`` kill plan armed at the ``ingest.compact`` manifest
   phase — the process dies mid-compaction with the fault layer's
   kill exit code (87), after the segment file is written but before
   the manifest references it,
3. resumes with a second ``repro ingest`` run (no faults): the WAL
   replays every acknowledged document, the orphaned segment from the
   killed compaction is swept, batch 2 streams in, one document is
   retracted, and a full compaction folds everything,
4. asserts the recovered store answers a fixed query set pair-for-pair
   identically to a one-shot build over the same final corpus,
5. snapshots the resume run's ingest metrics into a
   ``check_regression.py``-compatible record.

Two runs of this smoke on the same commit must agree counter for
counter (WAL records, replays, recovered orphans, fold counts, result
pairs); diff the records with ``check_regression.py --strict``.

Usage::

    PYTHONPATH=src python benchmarks/smoke_ingest.py --out smoke1.json
"""

from __future__ import annotations

import argparse
import json
import os
import random
import subprocess
import sys
import tempfile
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent


def _ensure_importable() -> None:
    try:
        import repro  # noqa: F401
    except ImportError:
        sys.path.insert(0, str(ROOT / "src"))


SEED = 20160626  # deterministic corpus => deterministic counters
BATCH1, BATCH2 = 12, 6
DOC_TOKENS = 220
VOCAB = 120
W, TAU, K_MAX = 12, 3, 2
RETRACTED = 3


def make_texts() -> list[str]:
    rng = random.Random(SEED)
    return [
        " ".join(f"t{rng.randrange(VOCAB)}" for _ in range(DOC_TOKENS))
        for _ in range(BATCH1 + BATCH2)
    ]


def write_batch(directory: Path, texts: list[str], offset: int) -> None:
    directory.mkdir(parents=True)
    for i, text in enumerate(texts):
        (directory / f"doc-{offset + i:04d}.txt").write_text(text)


def run_ingest(store: Path, data_dir: Path, *extra, env=None) -> subprocess.CompletedProcess:
    cmd = [
        sys.executable, "-m", "repro", "ingest",
        "--dir", str(store), "--data", str(data_dir),
        "-w", str(W), "--tau", str(TAU), "--k-max", str(K_MAX),
        *extra,
    ]
    full_env = {**os.environ, "PYTHONPATH": str(ROOT / "src")}
    if env:
        full_env.update(env)
    return subprocess.run(cmd, capture_output=True, text=True, env=full_env, timeout=300)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[1])
    parser.add_argument("--out", type=Path, required=True,
                        help="metrics record for check_regression.py")
    args = parser.parse_args()
    _ensure_importable()

    from repro import DocumentCollection, Index, PKWiseSearcher, SearchParams
    from repro.faults import KILL_EXIT_CODE, FaultPlan, FaultSpec

    texts = make_texts()
    with tempfile.TemporaryDirectory(prefix="smoke_ingest_") as tmp:
        tmp_path = Path(tmp)
        store = tmp_path / "store"
        write_batch(tmp_path / "batch1", texts[:BATCH1], 0)
        write_batch(tmp_path / "batch2", texts[BATCH1:], BATCH1)

        # --- leg 1: stream batch 1, die mid-compaction ----------------
        plan_path = tmp_path / "kill_compact.json"
        FaultPlan([
            FaultSpec(point="ingest.compact", kind="kill",
                      match={"phase": "manifest"}),
        ]).to_json_file(plan_path)
        crash = run_ingest(
            store, tmp_path / "batch1", "--compact",
            env={"REPRO_FAULTS": str(plan_path)},
        )
        if crash.returncode != KILL_EXIT_CODE:
            print(
                f"FAIL: crash leg exited {crash.returncode}, "
                f"expected {KILL_EXIT_CODE}\n{crash.stderr}",
                file=sys.stderr,
            )
            return 1
        orphans = list(store.glob("segment.g*.idx"))
        print(
            f"leg 1: killed mid-compaction (exit {crash.returncode}), "
            f"{len(orphans)} orphaned segment file(s) on disk"
        )

        # --- leg 2: resume, stream batch 2, retract, compact ----------
        metrics_path = tmp_path / "ingest_metrics.json"
        resume = run_ingest(
            store, tmp_path / "batch2",
            "--remove", str(RETRACTED), "--compact",
            "--metrics-out", str(metrics_path),
        )
        if resume.returncode != 0:
            print(f"FAIL: resume leg exited {resume.returncode}\n"
                  f"{resume.stderr}", file=sys.stderr)
            return 1
        print("leg 2: resumed, replayed WAL, ingested batch 2, compacted")

        # --- leg 3: pair parity against a one-shot build --------------
        streamed = Index.open_live(store)
        one_shot_data = DocumentCollection()
        for doc_id, text in enumerate(texts):
            one_shot_data.add_tokens(text.split(), name=f"doc-{doc_id:04d}")
        params = SearchParams(w=W, tau=TAU, k_max=K_MAX)
        one_shot = Index(PKWiseSearcher(one_shot_data, params), one_shot_data)
        one_shot.remove(RETRACTED)

        rng = random.Random(SEED + 1)
        query_texts = [
            # passages lifted from both batches, plus a random probe
            " ".join(texts[5].split()[40:110]),
            " ".join(texts[BATCH1 + 2].split()[10:90]),
            " ".join(f"t{rng.randrange(VOCAB)}" for _ in range(80)),
        ]
        pair_counts = []
        for qid, text in enumerate(query_texts):
            got = sorted(tuple(p) for p in streamed.search_text(text).pairs)
            want = sorted(tuple(p) for p in one_shot.search_text(text).pairs)
            if got != want:
                print(
                    f"FAIL: query {qid} drifted: streamed {len(got)} pairs "
                    f"vs one-shot {len(want)}",
                    file=sys.stderr,
                )
                return 1
            if any(pair[0] == RETRACTED for pair in got):
                print(f"FAIL: query {qid} surfaced retracted doc "
                      f"{RETRACTED}", file=sys.stderr)
                return 1
            pair_counts.append(len(got))
        docs_total = streamed.searcher().store.next_doc_id
        streamed.close()

        # --- record: resume-leg ingest counters + result shape --------
        ingest_metrics = json.loads(metrics_path.read_text())["metrics"]
        recovered = ingest_metrics["counters"].get(
            "ingest.recovered_orphans", 0
        )
        print(
            f"leg 3: {docs_total} docs recovered, pair parity on "
            f"{len(query_texts)} queries {pair_counts}, "
            f"orphans swept at resume: {recovered}"
        )
        if docs_total != BATCH1 + BATCH2:
            print(f"FAIL: expected {BATCH1 + BATCH2} documents, "
                  f"got {docs_total}", file=sys.stderr)
            return 1
        if recovered < 1:
            print("FAIL: the killed compaction left a segment file the "
                  "resume leg should have swept", file=sys.stderr)
            return 1
        for qid, count in enumerate(pair_counts):
            ingest_metrics["gauges"][f"smoke.query_{qid}_pairs"] = count
        ingest_metrics["gauges"]["smoke.recovered_orphans"] = recovered
        record = {
            "config": {
                "profile": "ingest-smoke",
                "num_documents": BATCH1 + BATCH2,
                "num_queries": len(query_texts),
                "w": W,
                "tau": TAU,
                "k_max": K_MAX,
            },
            "serial": {"metrics": ingest_metrics},
        }
        args.out.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
        print(f"wrote metrics record to {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
