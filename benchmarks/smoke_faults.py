#!/usr/bin/env python
"""CI smoke for the fault-tolerance layer: fixed-seed kill + corrupt plans.

Runs the acceptance scenarios of the robustness layer end to end with a
deterministic :class:`repro.FaultPlan` — activated through the
``REPRO_FAULTS`` environment variable exactly as an operator would —
and asserts *exactness*, not just survival:

``exactness``
    One injected worker kill (single-trigger, ledger-arbitrated) plus
    one persistent poison query: the run must complete, quarantine
    exactly the poison query, and return byte-identical results to a
    clean serial run on every surviving query.
``corrupt``
    A corrupt-bytes fault on snapshot read must surface as a typed
    :class:`~repro.PersistenceError` naming the corrupt section (never
    a pickle error), and rotation fallback must recover the previous
    intact snapshot.
``resume``
    A kill with recovery disabled aborts the run but leaves an atomic
    checkpoint; re-running with ``resume=True`` must produce the same
    ``AggregateRun`` pairs as an uninterrupted run (workload and
    self-join).

Usage::

    PYTHONPATH=src python benchmarks/smoke_faults.py            # all
    PYTHONPATH=src python benchmarks/smoke_faults.py --only resume

Exit code 0 = every scenario exact; any assertion failure is fatal.
"""

from __future__ import annotations

import argparse
import os
import random
import sys
import tempfile
import warnings
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent


def _ensure_importable() -> None:
    try:
        import repro  # noqa: F401
    except ImportError:
        sys.path.insert(0, str(ROOT / "src"))


SEED = 20160626
NUM_DOCS = 8
DOC_TOKENS = 120
VOCAB = 70
KILL_POSITION = 3
POISON_POSITION = 6
# The resume scenario kills inside the third chunk (positions {4,5} at
# chunk_size=2): it is only dispatched after an earlier chunk completed
# and was checkpointed, so the resumed run provably skips work.
RESUME_KILL_POSITION = 5


def build_workload():
    from repro import DocumentCollection, PKWiseSearcher, SearchParams

    rng = random.Random(SEED)
    vocab = [f"w{i}" for i in range(VOCAB)]
    data = DocumentCollection()
    for _ in range(NUM_DOCS):
        data.add_tokens([rng.choice(vocab) for _ in range(DOC_TOKENS)])
    params = SearchParams(w=12, tau=3, k_max=2)
    searcher = PKWiseSearcher(data, params)
    queries = [data[i] for i in range(len(data))]
    return data, params, searcher, queries


def env_activated_plan(specs, workdir: Path, seed: int = SEED):
    """Install a plan the way production would: via ``REPRO_FAULTS``.

    Writes the plan JSON, points the environment variable at it, and
    re-arms the lazy env check so the *next* injection loads it —
    proving the whole file → env → activation path, not just
    ``install_plan``.
    """
    from repro import FaultPlan, faults

    workdir.mkdir(parents=True, exist_ok=True)
    plan = FaultPlan(specs, seed=seed, ledger=workdir / "ledger")
    path = workdir / "plan.json"
    plan.to_json_file(path)
    os.environ[faults.PLAN_ENV_VAR] = str(path)
    faults.clear_plan()


def deactivate():
    from repro import faults

    os.environ.pop(faults.PLAN_ENV_VAR, None)
    faults.clear_plan()


def scenario_exactness() -> None:
    from repro import FaultSpec, ParallelExecutor
    from repro.eval.harness import serial_run

    _data, _params, searcher, queries = build_workload()
    clean = serial_run(searcher, queries)
    with tempfile.TemporaryDirectory(prefix="smoke-faults-") as workdir:
        env_activated_plan(
            [
                FaultSpec(point="parallel.worker.query", kind="kill",
                          match={"position": KILL_POSITION}, max_triggers=1),
                FaultSpec(point="parallel.worker.query", kind="raise",
                          match={"position": POISON_POSITION},
                          message="poison"),
            ],
            Path(workdir),
        )
        try:
            executor = ParallelExecutor(jobs=2, chunk_size=2,
                                        retry_backoff=0.0)
            run = executor.run_workload(searcher, queries)
        finally:
            deactivate()

    assert [f.position for f in run.failures] == [POISON_POSITION], (
        f"expected exactly the poison query quarantined, got "
        f"{[(f.position, f.error_type) for f in run.failures]}"
    )
    assert run.failures[0].error_type == "FaultInjectionError"
    assert run.recovery is not None and run.recovery.pool_restarts >= 1, (
        "the injected kill should have restarted the pool"
    )
    surviving = {
        key: value
        for key, value in clean.results_by_query.items()
        if key != POISON_POSITION
    }
    assert dict(run.results_by_query) == surviving, (
        "surviving results drifted from the clean serial run"
    )
    print(
        f"exactness: ok (quarantined={len(run.failures)}, "
        f"pool_restarts={run.recovery.pool_restarts}, "
        f"surviving={len(run.results_by_query)})",
        file=sys.stderr,
    )


def scenario_corrupt() -> None:
    from repro import FaultSpec, PersistenceError, save_searcher
    from repro.persistence import load_searcher

    _data, _params, searcher, _queries = build_workload()
    with tempfile.TemporaryDirectory(prefix="smoke-faults-") as workdir:
        workdir = Path(workdir)
        path = workdir / "index.idx"
        save_searcher(searcher, path, rotate=1)
        save_searcher(searcher, path, rotate=1)  # index.idx.1 now intact
        env_activated_plan(
            [
                FaultSpec(point="persistence.read", kind="corrupt",
                          match={"section": "searcher"}, max_triggers=1),
            ],
            workdir,
        )
        try:
            try:
                load_searcher(path, fallback=False)
            except PersistenceError as exc:
                assert "section 'searcher'" in str(exc), (
                    f"corruption error must name the section, got: {exc}"
                )
            else:
                raise AssertionError(
                    "corrupted snapshot loaded without a typed error"
                )
        finally:
            deactivate()

        # Rotation fallback: scribble over the primary on disk and load
        # with fallback enabled — the intact .1 generation must serve.
        path.write_bytes(b"crash left garbage here")
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            recovered = load_searcher(path)
        assert recovered.params == searcher.params
    print("corrupt: ok (typed error named the section; "
          "rotation fallback recovered)", file=sys.stderr)


def scenario_resume() -> None:
    from repro import (
        FaultSpec,
        ParallelExecutor,
        WorkerCrashError,
        local_similarity_self_join,
    )
    from repro.eval.harness import serial_run

    data, params, searcher, queries = build_workload()
    clean = serial_run(searcher, queries)
    with tempfile.TemporaryDirectory(prefix="smoke-faults-") as workdir:
        workdir = Path(workdir)
        checkpoint = workdir / "run.ckpt"
        env_activated_plan(
            [
                FaultSpec(point="parallel.worker.query", kind="kill",
                          match={"position": RESUME_KILL_POSITION},
                          max_triggers=1),
            ],
            workdir,
        )
        executor = ParallelExecutor(jobs=2, chunk_size=2, retry_backoff=0.0,
                                    max_pool_restarts=0)
        try:
            try:
                executor.run_workload(searcher, queries,
                                      checkpoint=checkpoint)
            except WorkerCrashError:
                pass
            else:
                raise AssertionError(
                    "kill with max_pool_restarts=0 should abort the run"
                )
        finally:
            deactivate()
        assert checkpoint.exists(), "aborted run must leave its checkpoint"

        resumed = executor.run_workload(
            searcher, queries, checkpoint=checkpoint, resume=True
        )
        assert resumed.results_by_query == clean.results_by_query, (
            "resumed run drifted from the uninterrupted serial run"
        )
        assert resumed.recovery is not None
        assert resumed.recovery.resumed_items > 0
        assert not checkpoint.exists(), (
            "checkpoint should be removed after a successful resume"
        )
        workload_resumed = resumed.recovery.resumed_items

        # Same story for the self-join grain.
        join_expected = local_similarity_self_join(data, params)
        join_checkpoint = workdir / "join.ckpt"
        env_activated_plan(
            [
                FaultSpec(point="parallel.worker.document", kind="kill",
                          match={"doc_id": 4}, max_triggers=1),
            ],
            workdir / "join-faults",
        )
        try:
            try:
                executor.self_join(data, params, checkpoint=join_checkpoint)
            except WorkerCrashError:
                pass
            else:
                raise AssertionError("self-join kill should abort the run")
        finally:
            deactivate()
        assert join_checkpoint.exists()
        join_resumed = executor.self_join(
            data, params, checkpoint=join_checkpoint, resume=True
        )
        assert join_resumed == join_expected, (
            "resumed self-join drifted from the uninterrupted run"
        )
        assert not join_checkpoint.exists()
    print(
        f"resume: ok (workload resumed_items={workload_resumed}, "
        f"selfjoin pairs={len(join_resumed)})",
        file=sys.stderr,
    )


SCENARIOS = {
    "exactness": scenario_exactness,
    "corrupt": scenario_corrupt,
    "resume": scenario_resume,
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument("--only", choices=["all", *SCENARIOS], default="all",
                        help="run one scenario (default: all)")
    args = parser.parse_args(argv)
    _ensure_importable()

    names = list(SCENARIOS) if args.only == "all" else [args.only]
    for name in names:
        SCENARIOS[name]()
    print(f"fault smoke passed ({', '.join(names)})", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
