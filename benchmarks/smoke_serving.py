#!/usr/bin/env python
"""CI smoke for the serving stack: real process, real HTTP, real index.

Exercises the full ``repro serve`` path end to end:

1. generates a small deterministic corpus (fixed seed) in a temp dir,
2. builds an index with ``repro index``,
3. starts ``repro serve --port 0`` as a subprocess and parses the
   ``SERVING http://...`` line for the ephemeral port,
4. hits ``/healthz``, runs the same query twice through ``/search``
   (one cache miss, one hit) and asserts pair-for-pair parity,
5. snapshots ``/metrics`` into a ``check_regression.py``-compatible
   record (``{"config": ..., "serial": {"metrics": ...}}``).

Run it twice and diff the two snapshots with ``check_regression.py``:
the counters (request counts, cache hits/misses, search phase counters)
are deterministic for the fixed corpus, so any drift between two runs
of the same commit — or between a PR and its base — is a real behaviour
change, not noise.

With ``--shards N`` the smoke instead exercises the sharded stack:
``repro serve --shards N`` (N worker processes + scatter router),
asserts pair-for-pair parity against the single-process server, writes
the deterministic metrics record, then SIGKILLs one worker mid-run and
asserts the router serves partial results naming the dead shard (the
supervisor is disabled so the corpse stays dead for the assertion).

With ``--chaos`` (requires ``--replicas >= 2``) the smoke becomes a
self-healing drill: ``repro serve --shards N --replicas R`` with the
supervisor on, then a seeded loop SIGKILLs random workers under a
sustained query stream.  Every query during every outage must come back
complete and pair-identical (replica failover), and after each kill the
supervisor must restart + re-admit the worker until ``/healthz`` is
``ok`` again with no operator action.  The emitted metrics record is a
hand-built envelope of chaos counters (kills, query failures = 0,
parity violations = 0, heals) that is identical across runs, so two
chaos runs diff clean under ``check_regression.py --strict``.

Usage::

    PYTHONPATH=src python benchmarks/smoke_serving.py --out smoke1.json
    PYTHONPATH=src python benchmarks/smoke_serving.py --shards 3 --out s3.json
    PYTHONPATH=src python benchmarks/smoke_serving.py \\
        --shards 2 --replicas 2 --chaos --out chaos.json
"""

from __future__ import annotations

import argparse
import json
import os
import random
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent


def _ensure_importable() -> None:
    try:
        import repro  # noqa: F401
    except ImportError:
        sys.path.insert(0, str(ROOT / "src"))


SEED = 20160626  # deterministic corpus => deterministic counters
NUM_DOCS = 6
DOC_TOKENS = 300
VOCAB = 150
W, TAU = 20, 4


def write_corpus(directory: Path) -> str:
    """Write a deterministic corpus with real repeats; returns a query."""
    rng = random.Random(SEED)
    vocab = [f"word{i}" for i in range(VOCAB)]
    base = [rng.choice(vocab) for _ in range(DOC_TOKENS)]
    for i in range(NUM_DOCS):
        tokens = list(base)
        for j in range(0, len(tokens), 13):  # light per-doc perturbation
            tokens[j] = rng.choice(vocab)
        (directory / f"doc{i}.txt").write_text(" ".join(tokens))
    return " ".join(base[50:150])


def _spawn_server(cmd: list[str], startup_timeout: float):
    """Start a serve subprocess; returns (process, url, shard_lines).

    ``shard_lines`` collects the ``SHARD <id> <url> pid=<pid> ...``
    lines a sharded server prints before ``SERVING`` (empty otherwise).
    """
    server = subprocess.Popen(cmd, stdout=subprocess.PIPE, text=True)
    deadline = time.monotonic() + startup_timeout
    url = None
    shard_lines: list[str] = []
    while time.monotonic() < deadline:
        line = server.stdout.readline()
        if line.startswith("SHARD "):
            shard_lines.append(line.strip())
            continue
        if line.startswith("SERVING "):
            url = line.split(maxsplit=1)[1].strip()
            break
        if server.poll() is not None:
            break
    if url is None:
        server.terminate()
        server.wait(timeout=10)
        raise RuntimeError(f"no SERVING line from {' '.join(cmd)}")
    return server, url, shard_lines


def _healthz_any_status(url: str) -> tuple[int, dict]:
    """GET /healthz; returns (http_status, body) even on 503 (down)."""
    import urllib.error
    import urllib.request

    try:
        with urllib.request.urlopen(f"{url}/healthz", timeout=10) as resp:
            return resp.status, json.load(resp)
    except urllib.error.HTTPError as exc:
        return exc.code, json.load(exc)


def _parse_shard_line(line: str) -> dict:
    """``SHARD 1 http://h:p pid=123 docs=[2,4) replica=0`` -> dict.

    The ``replica=`` field is trailing and optional (pre-replication
    servers do not print it).
    """
    parts = line.split()
    lo, hi = parts[4][len("docs=["):-1].split(",")
    replica = 0
    for extra in parts[5:]:
        if extra.startswith("replica="):
            replica = int(extra[len("replica="):])
    return {
        "shard_id": int(parts[1]),
        "url": parts[2],
        "pid": int(parts[3][len("pid="):]),
        "doc_lo": int(lo),
        "doc_hi": int(hi),
        "replica": replica,
    }


def run_sharded(args: argparse.Namespace, index_path: Path,
                query_text: str) -> dict:
    """The --shards mode: parity, deterministic metrics, kill a worker."""
    from repro.service.client import (
        remote_healthz,
        remote_metrics,
        remote_search,
    )

    # Reference answer from the single-process server.
    server, url, _ = _spawn_server(
        [sys.executable, "-m", "repro.cli", "serve",
         "--index", str(index_path), "--port", "0"],
        args.startup_timeout,
    )
    try:
        reference = remote_search(url, query_text)
    finally:
        server.terminate()
        server.wait(timeout=10)
    assert reference["num_pairs"] > 0, "smoke query found no matches"

    # --no-supervise: this mode asserts the *partial-results* contract,
    # which needs the killed worker to stay dead instead of healing.
    server, url, shard_lines = _spawn_server(
        [sys.executable, "-m", "repro.cli", "serve",
         "--index", str(index_path), "--port", "0",
         "--shards", str(args.shards), "--no-supervise"],
        args.startup_timeout,
    )
    try:
        shards = [_parse_shard_line(line) for line in shard_lines]
        assert len(shards) == args.shards, shard_lines

        health = remote_healthz(url)
        assert health["status"] == "ok", health
        assert health["num_shards"] == args.shards, health
        assert health["documents"] == NUM_DOCS, health

        first = remote_search(url, query_text)
        second = remote_search(url, query_text)
        assert first["pairs"] == reference["pairs"], (
            "sharded results diverge from the single-process server"
        )
        assert not first["cached"] and second["cached"], (first, second)
        assert first["pairs"] == second["pairs"], "cache changed the answer"

        # Snapshot metrics BEFORE the kill phase: the counters up to
        # here are deterministic, the recovery path below is not.
        snapshot = remote_metrics(url)

        victim = shards[1]
        os.kill(victim["pid"], signal.SIGKILL)
        time.sleep(0.5)  # let the OS reap the port

        partial = remote_search(url, query_text)
        assert partial.get("partial") is True, partial
        failures = partial["failures"]
        assert len(failures) == 1, failures
        assert failures[0]["position"] == victim["shard_id"], failures
        assert failures[0]["query_name"].endswith(
            f"@shard-{victim['shard_id']:03d}"
        ), failures
        survivors = [
            pair for pair in reference["pairs"]
            if not victim["doc_lo"] <= pair[0] < victim["doc_hi"]
        ]
        assert partial["pairs"] == survivors, (
            "partial results must cover exactly the surviving shards"
        )
        assert len(survivors) < reference["num_pairs"], (
            "kill test needs matches inside the killed shard"
        )

        # Degraded is an *answering* state: the body says degraded but
        # the HTTP status must stay 200 (503 is reserved for down /
        # closed, where no query can be answered at all).
        code, degraded = _healthz_any_status(url)
        assert degraded["status"] == "degraded", degraded
        assert code == 200, (code, degraded)
    finally:
        server.terminate()
        server.wait(timeout=30)

    print(f"sharded smoke ok: {first['num_pairs']} pairs across "
          f"{args.shards} shards, parity + cache verified; killed shard "
          f"{victim['shard_id']} -> {len(survivors)} partial pairs")
    return snapshot


def _supervisor_replicas(url: str) -> list[dict]:
    code, health = _healthz_any_status(url)
    assert code == 200, (code, health)  # degraded still answers: 200
    return health["supervisor"]["replicas"]


def run_chaos(args: argparse.Namespace, index_path: Path,
              query_text: str) -> dict:
    """The --chaos mode: kill loop under load, zero lost queries.

    Returns a *hand-built* metrics envelope: the live router counters
    vary with poll timing (how many queries land during each outage),
    so the deterministic record is the chaos outcome itself — kills
    injected, query failures observed (must be 0), parity violations
    (must be 0), heals completed.  Identical across runs by
    construction, so ``check_regression.py --strict`` can diff it.
    """
    from repro.service.client import remote_search

    assert args.replicas >= 2, "--chaos needs --replicas >= 2 (failover)"

    server, url, _ = _spawn_server(
        [sys.executable, "-m", "repro.cli", "serve",
         "--index", str(index_path), "--port", "0"],
        args.startup_timeout,
    )
    try:
        reference = remote_search(url, query_text)
    finally:
        server.terminate()
        server.wait(timeout=10)
    assert reference["num_pairs"] > 0, "smoke query found no matches"

    server, url, shard_lines = _spawn_server(
        [sys.executable, "-m", "repro.cli", "serve",
         "--index", str(index_path), "--port", "0",
         "--shards", str(args.shards), "--replicas", str(args.replicas),
         "--check-interval", "0.2"],
        args.startup_timeout,
    )
    queries = 0
    query_failures = 0
    parity_violations = 0
    healed = 0
    rng = random.Random(SEED)
    try:
        shards = [_parse_shard_line(line) for line in shard_lines]
        assert len(shards) == args.shards * args.replicas, shard_lines

        def one_query() -> None:
            nonlocal queries, query_failures, parity_violations
            response = remote_search(url, query_text)
            queries += 1
            if response.get("partial") or response.get("failures"):
                query_failures += 1
            elif response["pairs"] != reference["pairs"]:
                parity_violations += 1

        one_query()
        for round_no in range(args.kills):
            replicas = _supervisor_replicas(url)
            assert all(r["state"] == "ok" for r in replicas), replicas
            victim = rng.choice(replicas)
            os.kill(victim["pid"], signal.SIGKILL)
            # Sustained queries across the outage; heal = every replica
            # back to ok with one more completed restart than before.
            deadline = time.monotonic() + args.heal_timeout
            while True:
                one_query()
                replicas = _supervisor_replicas(url)
                restarts = sum(r["restarts"] for r in replicas)
                if (all(r["state"] == "ok" for r in replicas)
                        and restarts >= round_no + 1):
                    healed += 1
                    break
                if time.monotonic() > deadline:
                    raise AssertionError(
                        f"kill round {round_no} never healed: {replicas}"
                    )
                time.sleep(0.1)

        code, health = _healthz_any_status(url)
        assert code == 200 and health["status"] == "ok", (code, health)
        one_query()
    finally:
        server.terminate()
        server.wait(timeout=30)

    assert query_failures == 0, (
        f"{query_failures}/{queries} queries failed during chaos"
    )
    assert parity_violations == 0, (
        f"{parity_violations}/{queries} queries lost parity during chaos"
    )
    print(f"chaos smoke ok: {args.kills} kills across {args.shards}x"
          f"{args.replicas} workers, {queries} queries, 0 failures, "
          f"0 parity violations, {healed} heals")
    return {
        "counters": {
            "chaos.kills": args.kills,
            "chaos.query_failures": query_failures,
            "chaos.parity_violations": parity_violations,
            "chaos.healed": healed,
        },
        "timers": {},
        "gauges": {
            "chaos.shards": args.shards,
            "chaos.replicas": args.replicas,
        },
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument("--out", type=Path, required=True,
                        help="where to write the metrics record")
    parser.add_argument("--startup-timeout", type=float, default=30.0)
    parser.add_argument("--shards", type=int, default=0,
                        help="exercise `repro serve --shards N` instead of "
                             "the single-process server")
    parser.add_argument("--replicas", type=int, default=1,
                        help="workers per shard (chaos mode needs >= 2)")
    parser.add_argument("--chaos", action="store_true",
                        help="self-healing drill: SIGKILL random workers "
                             "under load; requires --shards and "
                             "--replicas >= 2")
    parser.add_argument("--kills", type=int, default=3,
                        help="workers to SIGKILL in --chaos mode")
    parser.add_argument("--heal-timeout", type=float, default=60.0,
                        help="seconds to wait for the supervisor to heal "
                             "each kill")
    args = parser.parse_args(argv)

    _ensure_importable()
    from repro.service.client import remote_healthz, remote_metrics, remote_search

    with tempfile.TemporaryDirectory(prefix="repro-smoke-") as tmp:
        tmp_path = Path(tmp)
        corpus_dir = tmp_path / "corpus"
        corpus_dir.mkdir()
        query_text = write_corpus(corpus_dir)
        index_path = tmp_path / "corpus.idx"

        subprocess.run(
            [sys.executable, "-m", "repro.cli", "index",
             "--data", str(corpus_dir), "--out", str(index_path),
             "-w", str(W), "--tau", str(TAU)],
            check=True,
        )

        if args.chaos:
            snapshot = run_chaos(args, index_path, query_text)
            record = {
                "config": {
                    "profile": "serving-smoke-chaos",
                    "num_documents": NUM_DOCS,
                    "shards": args.shards,
                    "replicas": args.replicas,
                    "kills": args.kills,
                    "w": W,
                    "tau": TAU,
                    "k_max": 4,
                },
                "serial": {"metrics": snapshot},
            }
            args.out.write_text(
                json.dumps(record, indent=2, sort_keys=True) + "\n"
            )
            print(f"wrote {args.out}")
            return 0

        if args.shards > 1:
            snapshot = run_sharded(args, index_path, query_text)
            record = {
                "config": {
                    "profile": "serving-smoke-sharded",
                    "num_documents": NUM_DOCS,
                    "num_queries": 2,
                    "shards": args.shards,
                    "w": W,
                    "tau": TAU,
                    "k_max": 4,
                },
                "serial": {"metrics": snapshot},
            }
            args.out.write_text(
                json.dumps(record, indent=2, sort_keys=True) + "\n"
            )
            print(f"wrote {args.out}")
            return 0

        server = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve",
             "--index", str(index_path), "--port", "0"],
            stdout=subprocess.PIPE,
            text=True,
        )
        try:
            deadline = time.monotonic() + args.startup_timeout
            url = None
            while time.monotonic() < deadline:
                line = server.stdout.readline()
                if line.startswith("SERVING "):
                    url = line.split(maxsplit=1)[1].strip()
                    break
                if server.poll() is not None:
                    print("error: server exited before SERVING line",
                          file=sys.stderr)
                    return 1
            if url is None:
                print("error: no SERVING line within timeout", file=sys.stderr)
                return 1

            health = remote_healthz(url)
            assert health["status"] == "ok", health
            assert health["documents"] == NUM_DOCS, health

            first = remote_search(url, query_text)
            second = remote_search(url, query_text)
            assert first["num_pairs"] > 0, "smoke query found no matches"
            assert not first["cached"] and second["cached"], (first, second)
            assert first["pairs"] == second["pairs"], "cache changed the answer"

            snapshot = remote_metrics(url)
            counters = snapshot["metrics"]["counters"]
            assert counters["service.cache_hits"] == 1, counters
            assert counters["service.completed"] == 2, counters
        finally:
            server.terminate()
            server.wait(timeout=10)

    record = {
        "config": {
            "profile": "serving-smoke",
            "num_documents": NUM_DOCS,
            "num_queries": 2,
            "w": W,
            "tau": TAU,
            "k_max": 4,
        },
        "serial": {"metrics": snapshot},
    }
    args.out.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    print(f"smoke ok: {first['num_pairs']} pairs, cache hit verified; "
          f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
