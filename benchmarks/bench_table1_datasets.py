"""E1 / Table 1: dataset statistics.

Prints the paper's Table 1 (the published statistics of REUTERS, TREC
and PAN) next to the statistics of the synthetic stand-ins actually used
by this benchmark suite, so every other bench's scale is documented.
"""

from __future__ import annotations

from repro.corpus import CollectionStats
from repro.corpus.synthetic import DATASET_PROFILES

from common import pan_workload, workload, write_report


def build_all_stats():
    rows = []
    for name in ("REUTERS", "TREC"):
        data, queries, _truth = workload(name)
        rows.append((name, CollectionStats.compute(data, queries)))
    data, queries, _truth = pan_workload()
    rows.append(("PAN", CollectionStats.compute(data, queries)))
    return rows


def test_table1_dataset_statistics(benchmark):
    rows = benchmark.pedantic(build_all_stats, rounds=1, iterations=1)
    lines = ["Table 1: dataset statistics (paper vs bench-scale synthetic)"]
    lines.append("--- paper (Table 1) ---")
    for name, profile in DATASET_PROFILES.items():
        lines.append(
            f"{name:<10} |D|={profile.num_documents:<8} "
            f"|Q|={profile.num_queries:<6} "
            f"avg|d|={profile.avg_doc_length:<10.1f} "
            f"avg|q|={profile.avg_query_length:<8.1f} "
            f"|U|={profile.vocabulary_size}"
        )
    lines.append("--- this run (synthetic stand-ins) ---")
    for name, stats in rows:
        lines.append(stats.as_table_row(name))
    write_report("table1_datasets", lines)
    assert all(stats.num_data_documents >= 2 for _name, stats in rows)
